package main

// The durability surface of the daemon: the per-stream state resource
// (the wire the cluster router's checkpoint-transfer handoff rides),
// the health/readiness probes, and the -checkpoint-dir lifecycle —
// restore on boot, periodic snapshots off the hot path, one final
// snapshot on shutdown, and archival of idle streams as they are
// evicted.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"io/fs"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/sampling/hub"
	"repro/sampling/persist"
)

// checkpointFile is the container's name inside -checkpoint-dir; the
// evicted/ subdirectory archives final per-stream blobs as Sweep
// retires idle streams.
const (
	checkpointFile = "hub.ckpt"
	evictedDir     = "evicted"
)

// healthz is pure liveness: the process is up and serving. It never
// looks at the hub — a daemon mid-restore or mid-drain is still alive.
func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyz is readiness: false (503) until the boot-time restore has
// completed and again once shutdown has begun draining, so a load
// balancer or cluster router stops sending traffic before the
// listener goes away.
func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	if s.ready != nil && !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// streamState exports one stream's exact engine state
// (GET /v1/streams/{id}/state) without disturbing it.
func (s *server) streamState(w http.ResponseWriter, r *http.Request) {
	blob, err := s.hub.StreamState(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

// readStateBody buffers a state-blob request body under the body cap,
// incrementally (no unbounded slurp), reporting the 400/413 itself on
// failure.
func (s *server) readStateBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, http.MaxBytesReader(w, r.Body, s.maxBody)); err != nil {
		writeBodyError(w, err)
		return nil, false
	}
	return buf.Bytes(), true
}

// putStreamState installs an exported engine-state blob as a new
// stream (PUT /v1/streams/{id}/state) — the receiving half of a
// handoff. The id must not be live; a corrupt blob is a 400.
func (s *server) putStreamState(w http.ResponseWriter, r *http.Request) {
	blob, ok := s.readStateBody(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	if err := s.hub.RestoreStream(id, blob); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id, "status": "restored"})
}

// detachStreamState removes a stream without finalizing it and
// returns its final engine state (DELETE /v1/streams/{id}/state) —
// the sending half of a handoff, atomic against concurrent ticks.
func (s *server) detachStreamState(w http.ResponseWriter, r *http.Request) {
	blob, err := s.hub.Detach(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

// groupState, putGroupState and detachGroupState mirror the stream
// state resource for the group namespace.
func (s *server) groupState(w http.ResponseWriter, r *http.Request) {
	blob, err := s.hub.GroupState(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

func (s *server) putGroupState(w http.ResponseWriter, r *http.Request) {
	blob, ok := s.readStateBody(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	if err := s.hub.RestoreGroupState(id, blob); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id, "status": "restored"})
}

func (s *server) detachGroupState(w http.ResponseWriter, r *http.Request) {
	blob, err := s.hub.DetachGroup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

// checkpointer owns the -checkpoint-dir lifecycle around one hub.
type checkpointer struct {
	hub    *hub.Hub
	dir    string
	logger *slog.Logger
	saves  atomic.Int64 // successful checkpoint writes, for tests/metrics
}

func newCheckpointer(h *hub.Hub, dir string, logger *slog.Logger) *checkpointer {
	return &checkpointer{hub: h, dir: dir, logger: logger}
}

// restore loads the checkpoint file, if one exists, into the hub — the
// boot half of a zero-downtime restart. A missing file is a clean
// first boot; a corrupt file is a hard error (refusing to serve with
// silently dropped state beats serving wrong answers).
func (c *checkpointer) restore() error {
	path := filepath.Join(c.dir, checkpointFile)
	ck, err := persist.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		c.logger.Info("no checkpoint to restore", "path", path)
		return nil
	}
	if err != nil {
		return err
	}
	if err := c.hub.Restore(ck); err != nil {
		return err
	}
	c.logger.Info("restored checkpoint",
		"path", path, "streams", len(ck.Streams), "groups", len(ck.Groups),
		"taken_at", time.Unix(0, ck.TakenAtUnixNano).UTC().Format(time.RFC3339))
	return nil
}

// save cuts one whole-hub checkpoint and publishes it atomically.
func (c *checkpointer) save() error {
	ck, err := c.hub.Checkpoint()
	if err != nil {
		return err
	}
	if err := persist.WriteFile(filepath.Join(c.dir, checkpointFile), ck); err != nil {
		return err
	}
	c.saves.Add(1)
	return nil
}

// loop writes a checkpoint every interval until the context ends,
// then writes one final checkpoint — the shutdown half of a
// zero-downtime restart. The final write runs after the caller's
// drain (run sequences it), so the file carries every acknowledged
// tick.
func (c *checkpointer) loop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := c.save(); err != nil {
				c.logger.Error("checkpoint failed", "err", err)
			} else {
				c.logger.Debug("checkpoint written", "dir", c.dir)
			}
		}
	}
}

// evictHook archives an idle stream's final state under
// <dir>/evicted/ as Sweep retires it — the stream will never tick
// again, so this blob is its complete history. Archive failures are
// logged, never fatal: eviction must proceed regardless.
func (c *checkpointer) evictHook(ev hub.Eviction) {
	var blob []byte
	var err error
	suffix := ".engine"
	switch {
	case ev.Engine != nil:
		blob, err = ev.Engine.MarshalState()
	case ev.Group != nil:
		blob, err = ev.Group.MarshalState()
		suffix = ".group"
	}
	if err != nil {
		c.logger.Error("archiving evicted stream failed", "id", ev.ID, "err", err)
		return
	}
	dir := filepath.Join(c.dir, evictedDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		c.logger.Error("archiving evicted stream failed", "id", ev.ID, "err", err)
		return
	}
	path := filepath.Join(dir, url.PathEscape(ev.ID)+suffix)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		c.logger.Error("archiving evicted stream failed", "id", ev.ID, "err", err)
		return
	}
	c.logger.Info("archived evicted stream", "id", ev.ID, "path", path)
}
