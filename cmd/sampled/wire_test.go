package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/sampling/hub"
	"repro/sampling/wire"
)

// postRaw sends one body with an explicit content type and returns the
// status and response body.
func postRaw(t *testing.T, client *http.Client, url, ctype string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, ctype, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func mustFrame(t testing.TB, id string, ticks []float64) []byte {
	t.Helper()
	b, err := wire.AppendFrame(nil, id, ticks)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBinaryIngest drives the binary wire end to end: single and
// multi-frame bodies into streams and groups, with the ingest counters
// surfacing on /metrics.
func TestBinaryIngest(t *testing.T) {
	srv := httptest.NewServer(newServer(hub.New(), 0, 0))
	defer srv.Close()
	client := srv.Client()

	if code, _ := doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/s",
		map[string]any{"spec": "systematic:interval=2"}); code != http.StatusCreated {
		t.Fatal("create failed")
	}

	// One body, three frames: anonymous, URL-matching id, anonymous.
	body := mustFrame(t, "", []float64{1, 2, 3, 4})
	body = append(body, mustFrame(t, "s", []float64{5, 6})...)
	body = append(body, mustFrame(t, "", []float64{7})...)
	code, data := postRaw(t, client, srv.URL+"/v1/streams/s/ticks", wire.ContentType, body)
	if code != http.StatusOK {
		t.Fatalf("binary ingest: %d %s", code, data)
	}
	var off offerResponse
	if err := json.Unmarshal(data, &off); err != nil {
		t.Fatal(err)
	}
	if off.Accepted != 7 || off.Kept != 4 {
		t.Errorf("binary ingest: %+v, want accepted=7 kept=4", off)
	}

	// Groups take the same frames.
	if code, _ := doJSON(t, client, http.MethodPut, srv.URL+"/v1/groups/g",
		map[string]any{"specs": []string{"systematic:interval=2", "systematic:interval=4"}}); code != http.StatusCreated {
		t.Fatal("group create failed")
	}
	code, data = postRaw(t, client, srv.URL+"/v1/groups/g/ticks", wire.ContentType,
		mustFrame(t, "g", []float64{1, 2, 3, 4}))
	if code != http.StatusOK {
		t.Fatalf("binary group ingest: %d %s", code, data)
	}
	if err := json.Unmarshal(data, &off); err != nil {
		t.Fatal(err)
	}
	if off.Accepted != 4 || off.Kept != 3 {
		t.Errorf("binary group ingest: %+v, want accepted=4 kept=3", off)
	}

	code, metrics := doJSON(t, client, http.MethodGet, srv.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if !strings.Contains(string(metrics), "sampled_ingest_frames_total 4") {
		t.Errorf("metrics missing sampled_ingest_frames_total 4:\n%s", metrics)
	}
	wantBytes := fmt.Sprintf("sampled_ingest_bytes_total %d", len(body)+len(mustFrame(t, "g", []float64{1, 2, 3, 4})))
	if !strings.Contains(string(metrics), wantBytes) {
		t.Errorf("metrics missing %q:\n%s", wantBytes, metrics)
	}
}

// TestBinaryErrorMapping pins the wire's failure statuses: corruption
// and routing mistakes are 400s, anything oversized — a frame whose
// declared batch blows the tick cap, or a body over the byte cap — is
// a 413, and a ghost stream stays a 404.
func TestBinaryErrorMapping(t *testing.T) {
	// maxBody 256 gives maxTicks 32 — small enough to trip on purpose.
	srv := httptest.NewServer(newServer(hub.New(), 256, 0))
	defer srv.Close()
	client := srv.Client()

	if code, _ := doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/s",
		map[string]any{"spec": "systematic:interval=2"}); code != http.StatusCreated {
		t.Fatal("create failed")
	}

	badMagic := mustFrame(t, "", []float64{1})
	badMagic[0] ^= 0xff

	cases := []struct {
		name string
		path string
		body []byte
		want int
	}{
		{"bad magic", "/v1/streams/s/ticks", badMagic, http.StatusBadRequest},
		{"truncated frame", "/v1/streams/s/ticks", mustFrame(t, "", []float64{1, 2})[:12], http.StatusBadRequest},
		{"oversized frame", "/v1/streams/s/ticks", mustFrame(t, "", make([]float64, 33)), http.StatusRequestEntityTooLarge},
		{"id mismatch", "/v1/streams/s/ticks", mustFrame(t, "other", []float64{1}), http.StatusBadRequest},
		{"ghost stream", "/v1/streams/ghost/ticks", mustFrame(t, "", []float64{1}), http.StatusNotFound},
		{"empty body to ghost", "/v1/streams/ghost/ticks", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		code, data := postRaw(t, client, srv.URL+tc.path, wire.ContentType, tc.body)
		if code != tc.want {
			t.Errorf("%s: got %d (%s), want %d", tc.name, code, data, tc.want)
		}
	}

	// Rejected bodies must not have leaked partial batches: only the
	// frames before the failure count, and every case above fails on
	// its first frame.
	code, data := doJSON(t, client, http.MethodGet, srv.URL+"/v1/streams/s/snapshot", nil)
	if code != http.StatusOK || !strings.Contains(string(data), `"seen":0`) {
		t.Errorf("rejected frames leaked ticks: %d %s", code, data)
	}
}

// TestSessionIngest drives the persistent streaming mode: one
// connection carrying frames for several streams, totals at EOF, and
// the failure edges (wrong content type, anonymous frame, ghost
// stream) reporting how far the session got.
func TestSessionIngest(t *testing.T) {
	srv := httptest.NewServer(newServer(hub.New(), 0, 0))
	defer srv.Close()
	client := srv.Client()

	for _, id := range []string{"a", "b"} {
		if code, _ := doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/"+id,
			map[string]any{"spec": "systematic:interval=2"}); code != http.StatusCreated {
			t.Fatalf("create %s failed", id)
		}
	}

	var body []byte
	for i := 0; i < 4; i++ {
		body = append(body, mustFrame(t, "a", []float64{1, 2, 3, 4})...)
		body = append(body, mustFrame(t, "b", []float64{5, 6})...)
	}
	code, data := postRaw(t, client, srv.URL+"/v1/session", wire.ContentType, body)
	if code != http.StatusOK {
		t.Fatalf("session: %d %s", code, data)
	}
	var resp sessionResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Frames != 8 || resp.Accepted != 24 || resp.Kept != 12 {
		t.Errorf("session totals: %+v, want frames=8 accepted=24 kept=12", resp)
	}
	code, data = doJSON(t, client, http.MethodGet, srv.URL+"/v1/streams/a/snapshot", nil)
	if code != http.StatusOK || !strings.Contains(string(data), `"seen":16`) {
		t.Errorf("stream a after session: %d %s", code, data)
	}

	// Wrong content type: 415 before any frame is read.
	code, data = postRaw(t, client, srv.URL+"/v1/session", "application/json", []byte("[1,2]"))
	if code != http.StatusUnsupportedMediaType {
		t.Errorf("json session body: %d %s, want 415", code, data)
	}

	// Mid-session failures report the totals so far: two good frames,
	// then the offender.
	fail := func(name string, offender []byte, want int) {
		t.Helper()
		body := append(mustFrame(t, "a", []float64{1}), mustFrame(t, "b", []float64{2})...)
		body = append(body, offender...)
		code, data := postRaw(t, client, srv.URL+"/v1/session", wire.ContentType, body)
		if code != want {
			t.Errorf("%s: got %d (%s), want %d", name, code, data, want)
		}
		if !strings.Contains(string(data), `"frames":2`) {
			t.Errorf("%s: error body hides the session's progress: %s", name, data)
		}
	}
	fail("anonymous frame", mustFrame(t, "", []float64{1}), http.StatusBadRequest)
	fail("ghost stream", mustFrame(t, "ghost", []float64{1}), http.StatusNotFound)
}

// TestWireEquivalence is the cross-wire contract: the same tick series
// pushed through JSON, text, binary and a streaming session into
// identically specced streams must leave them byte-for-byte
// indistinguishable — snapshots and final summaries alike.
func TestWireEquivalence(t *testing.T) {
	at := time.Date(2026, 7, 27, 12, 0, 0, 0, time.UTC)
	h := hub.New(hub.WithClock(func() time.Time { return at }))
	srv := httptest.NewServer(newServer(h, 0, 0))
	defer srv.Close()
	client := srv.Client()

	series := heavyTailedSeries(3, 2000)
	const batch = 137
	wires := []string{"json", "text", "binary", "session"}
	for _, w := range wires {
		if code, body := doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/eq-"+w,
			map[string]any{"spec": "bss:interval=50,L=5,eps=1.0", "estimator": "aggvar"}); code != http.StatusCreated {
			t.Fatalf("create eq-%s: %d %s", w, code, body)
		}
	}

	var sessionBody []byte
	for off := 0; off < len(series); off += batch {
		end := off + batch
		if end > len(series) {
			end = len(series)
		}
		chunk := series[off:end]

		jsonBody, err := json.Marshal(chunk)
		if err != nil {
			t.Fatal(err)
		}
		if code, data := postRaw(t, client, srv.URL+"/v1/streams/eq-json/ticks", "application/json", jsonBody); code != http.StatusOK {
			t.Fatalf("json batch: %d %s", code, data)
		}

		var text []byte
		for i, v := range chunk {
			if i > 0 {
				text = append(text, ' ')
			}
			text = strconv.AppendFloat(text, v, 'g', -1, 64)
		}
		if code, data := postRaw(t, client, srv.URL+"/v1/streams/eq-text/ticks", "text/plain", text); code != http.StatusOK {
			t.Fatalf("text batch: %d %s", code, data)
		}

		if code, data := postRaw(t, client, srv.URL+"/v1/streams/eq-binary/ticks", wire.ContentType,
			mustFrame(t, "", chunk)); code != http.StatusOK {
			t.Fatalf("binary batch: %d %s", code, data)
		}

		sessionBody = append(sessionBody, mustFrame(t, "eq-session", chunk)...)
	}
	if code, data := postRaw(t, client, srv.URL+"/v1/session", wire.ContentType, sessionBody); code != http.StatusOK {
		t.Fatalf("session: %d %s", code, data)
	}

	fetch := func(method, suffix string) map[string][]byte {
		docs := make(map[string][]byte, len(wires))
		for _, w := range wires {
			code, data := doJSON(t, client, method, srv.URL+"/v1/streams/eq-"+w+suffix, nil)
			if code != http.StatusOK {
				t.Fatalf("%s eq-%s%s: %d %s", method, w, suffix, code, data)
			}
			docs[w] = data
		}
		return docs
	}
	snaps := fetch(http.MethodGet, "/snapshot")
	for _, w := range wires[1:] {
		if !bytes.Equal(snaps[w], snaps["json"]) {
			t.Errorf("%s snapshot diverges from json:\n %s\n %s", w, snaps[w], snaps["json"])
		}
	}
	// The final document — summary plus end-of-stream samples — must
	// agree too: the wire cannot change which ticks a technique keeps.
	finals := fetch(http.MethodDelete, "")
	for _, w := range wires[1:] {
		if !bytes.Equal(finals[w], finals["json"]) {
			t.Errorf("%s final summary diverges from json:\n %s\n %s", w, finals[w], finals["json"])
		}
	}
	var fin finishResponse
	if err := json.Unmarshal(finals["json"], &fin); err != nil {
		t.Fatal(err)
	}
	if fin.Summary.Seen != len(series) || fin.Summary.Kept == 0 {
		t.Errorf("equivalence run was degenerate: seen=%d kept=%d", fin.Summary.Seen, fin.Summary.Kept)
	}
}

// BenchmarkServeTicks measures end-to-end ingest over loopback HTTP —
// the daemon-side cost of each wire, request handling included. The
// session variant amortizes connection and response costs over the
// whole run, which is exactly its pitch.
func BenchmarkServeTicks(b *testing.B) {
	const batch = 512
	ticks := make([]float64, batch)
	for i := range ticks {
		ticks[i] = float64(i%97) * 1.5
	}

	newTarget := func(b *testing.B) (*httptest.Server, *http.Client) {
		b.Helper()
		srv := httptest.NewServer(newServer(hub.New(), 0, 0))
		b.Cleanup(srv.Close)
		client := srv.Client()
		req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/streams/s",
			strings.NewReader(`{"spec": "systematic:interval=100"}`))
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			b.Fatalf("create: %d", resp.StatusCode)
		}
		return srv, client
	}
	post := func(b *testing.B, client *http.Client, url, ctype string, body []byte) {
		b.Helper()
		resp, err := client.Post(url, ctype, bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("ingest: %d", resp.StatusCode)
		}
	}
	reportTicks := func(b *testing.B) {
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(b.N)*batch/s, "ticks/s")
		}
	}

	jsonBody, err := json.Marshal(ticks)
	if err != nil {
		b.Fatal(err)
	}
	var textBody []byte
	for i, v := range ticks {
		if i > 0 {
			textBody = append(textBody, ' ')
		}
		textBody = strconv.AppendFloat(textBody, v, 'g', -1, 64)
	}
	perPost := []struct {
		name  string
		ctype string
		body  []byte
	}{
		{"json", "application/json", jsonBody},
		{"text", "text/plain", textBody},
		{"binary", wire.ContentType, mustFrame(b, "", ticks)},
	}
	for _, tc := range perPost {
		b.Run(tc.name, func(b *testing.B) {
			srv, client := newTarget(b)
			url := srv.URL + "/v1/streams/s/ticks"
			b.SetBytes(int64(len(tc.body)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post(b, client, url, tc.ctype, tc.body)
			}
			reportTicks(b)
		})
	}

	b.Run("session", func(b *testing.B) {
		srv, client := newTarget(b)
		pr, pw := io.Pipe()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/session", pr)
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Content-Type", wire.ContentType)
		var wg sync.WaitGroup
		wg.Add(1)
		var status int
		go func() {
			defer wg.Done()
			resp, err := client.Do(req)
			if err != nil {
				pr.CloseWithError(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			status = resp.StatusCode
		}()
		// Buffer the pipe as a real client's socket would: without it,
		// every frame is a synchronous writer-to-reader handoff and the
		// benchmark measures goroutine wakeups instead of the wire.
		bw := bufio.NewWriterSize(pw, 64<<10)
		enc := wire.NewEncoder(bw)
		frame := mustFrame(b, "s", ticks)
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode("s", ticks); err != nil {
				b.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
		pw.Close()
		wg.Wait()
		reportTicks(b)
		if status != http.StatusOK {
			b.Fatalf("session: %d", status)
		}
	})
}
