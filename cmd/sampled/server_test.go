package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/sampling"
	"repro/sampling/hub"
)

// heavyTailedSeries draws a Pareto(alpha=1.5) series — the paper's
// infinite-variance marginal, the regime that makes the mean hard to
// sample.
func heavyTailedSeries(seed uint64, n int) []float64 {
	rng := dist.NewRand(seed)
	p, err := dist.NewPareto(1.5, 1.0)
	if err != nil {
		panic(err)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Sample(rng)
	}
	return out
}

func doJSON(t *testing.T, client *http.Client, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestEndToEnd boots the daemon on a loopback port via the real run()
// path (flags, listener, graceful shutdown), creates one stream per
// registered technique over HTTP, ingests a heavy-tailed series in
// batches, and checks the final summaries against the batch
// Engine.Sample path — the wire must not change a single sample.
func TestEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, ready) }()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not come up")
	}
	client := &http.Client{Timeout: 10 * time.Second}

	const nTicks = 5000
	series := heavyTailedSeries(42, nTicks)
	specs := map[string]string{
		"systematic": "systematic:interval=50,offset=7",
		"stratified": "stratified:interval=50,seed=11",
		"simple":     "simple:n=100,seed=5",
		"bernoulli":  "bernoulli:rate=0.02,seed=13",
		"bss":        "bss:interval=50,L=5,eps=1.0",
	}

	for name, spec := range specs {
		url := base + "/v1/streams/" + name
		if code, body := doJSON(t, client, http.MethodPut, url, map[string]any{"spec": spec}); code != http.StatusCreated {
			t.Fatalf("PUT %s: %d %s", name, code, body)
		}
		for off := 0; off < nTicks; off += 1000 {
			code, body := doJSON(t, client, http.MethodPost, url+"/ticks", series[off:off+1000])
			if code != http.StatusOK {
				t.Fatalf("POST %s ticks: %d %s", name, code, body)
			}
			var resp offerResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Accepted != 1000 {
				t.Fatalf("POST %s ticks: accepted %d of 1000", name, resp.Accepted)
			}
		}

		code, body := doJSON(t, client, http.MethodGet, url+"/snapshot", nil)
		if code != http.StatusOK {
			t.Fatalf("GET %s snapshot: %d %s", name, code, body)
		}
		var mid sampling.Summary
		if err := json.Unmarshal(body, &mid); err != nil {
			t.Fatal(err)
		}
		if mid.Seen != nTicks || mid.Finished {
			t.Errorf("%s mid-stream snapshot: seen=%d finished=%v", name, mid.Seen, mid.Finished)
		}

		code, body = doJSON(t, client, http.MethodDelete, url, nil)
		if code != http.StatusOK {
			t.Fatalf("DELETE %s: %d %s", name, code, body)
		}
		var fin finishResponse
		if err := json.Unmarshal(body, &fin); err != nil {
			t.Fatal(err)
		}

		// The batch reference: the same spec over the same series in one
		// Engine.Sample call. Identical seeds, identical Offer/Finish
		// order, so counters and the running mean must match exactly.
		ref, err := sampling.New(sampling.MustParse(spec))
		if err != nil {
			t.Fatal(err)
		}
		samples, err := ref.Sample(series)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Snapshot()
		if fin.Summary.Kept != want.Kept || fin.Summary.Seen != want.Seen ||
			fin.Summary.Qualified != want.Qualified || fin.Summary.Mean != want.Mean {
			t.Errorf("%s diverged from batch Engine.Sample:\n got kept=%d seen=%d qual=%d mean=%v\nwant kept=%d seen=%d qual=%d mean=%v",
				name, fin.Summary.Kept, fin.Summary.Seen, fin.Summary.Qualified, fin.Summary.Mean,
				want.Kept, want.Seen, want.Qualified, want.Mean)
		}
		if len(samples) != want.Kept {
			t.Errorf("%s: batch path kept %d samples but snapshot says %d", name, len(samples), want.Kept)
		}
		if !fin.Summary.Finished {
			t.Errorf("%s final summary not marked finished", name)
		}
	}

	// The daemon must drain gracefully on context cancellation.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestErrorMapping(t *testing.T) {
	srv := httptest.NewServer(newServer(hub.New(), 0, 0))
	defer srv.Close()
	client := srv.Client()

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"unknown technique", http.MethodPut, "/v1/streams/a", map[string]any{"spec": "warp-drive:rate=0.1"}, http.StatusBadRequest},
		{"bad spec string", http.MethodPut, "/v1/streams/a", map[string]any{"spec": ":broken"}, http.StatusBadRequest},
		{"rejected param", http.MethodPut, "/v1/streams/a", map[string]any{"spec": "systematic:interval=10,bogus=1"}, http.StatusBadRequest},
		{"unknown body field", http.MethodPut, "/v1/streams/a", map[string]any{"spec": "systematic:interval=10", "sede": 1}, http.StatusBadRequest},
		{"negative budget", http.MethodPut, "/v1/streams/a", map[string]any{"spec": "systematic:interval=10", "budget": -3}, http.StatusBadRequest},
		{"snapshot of ghost", http.MethodGet, "/v1/streams/ghost/snapshot", nil, http.StatusNotFound},
		{"ticks to ghost", http.MethodPost, "/v1/streams/ghost/ticks", []float64{1}, http.StatusNotFound},
		{"delete ghost", http.MethodDelete, "/v1/streams/ghost", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		if code, body := doJSON(t, client, tc.method, srv.URL+tc.path, tc.body); code != tc.want {
			t.Errorf("%s: got %d (%s), want %d", tc.name, code, body, tc.want)
		}
	}

	if code, _ := doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/a",
		map[string]any{"spec": "systematic:interval=10"}); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if code, body := doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/a",
		map[string]any{"spec": "systematic:interval=10"}); code != http.StatusConflict {
		t.Errorf("duplicate create: got %d (%s), want 409", code, body)
	}
}

func TestTextIngestAndObjectSpec(t *testing.T) {
	srv := httptest.NewServer(newServer(hub.New(), 0, 0))
	defer srv.Close()
	client := srv.Client()

	// The spec also travels in its typed object form.
	code, body := doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/txt", map[string]any{
		"spec": map[string]any{"technique": "systematic", "params": map[string]string{"interval": "2"}},
	})
	if code != http.StatusCreated {
		t.Fatalf("PUT: %d %s", code, body)
	}

	resp, err := client.Post(srv.URL+"/v1/streams/txt/ticks", "text/plain",
		strings.NewReader("1 2.5 3\n4e0\t5"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var off offerResponse
	if err := json.Unmarshal(data, &off); err != nil {
		t.Fatal(err)
	}
	if off.Accepted != 5 || off.Kept != 3 {
		t.Errorf("text ingest: %+v, want accepted=5 kept=3", off)
	}

	resp, err = client.Post(srv.URL+"/v1/streams/txt/ticks", "text/plain", strings.NewReader("1 garbage 3"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage text ingest: %d, want 400", resp.StatusCode)
	}

	// A concatenated second JSON value is a malformed request, not a
	// batch to silently drop; null and non-finite ticks would corrupt
	// the stream's running moments and must be rejected too.
	bad := []struct{ ctype, body string }{
		{"application/json", "[1,2,3] [4,5,6]"},
		{"application/json", "[1.5, null, 3]"},
		{"text/plain", "1 NaN 3"},
		{"text/plain", "1 +Inf 3"},
	}
	for _, tc := range bad {
		resp, err = client.Post(srv.URL+"/v1/streams/txt/ticks", tc.ctype, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("ingest of %q (%s): %d, want 400", tc.body, tc.ctype, resp.StatusCode)
		}
	}
	// Rejected batches must not have been partially ingested.
	code, body = doJSON(t, client, http.MethodGet, srv.URL+"/v1/streams/txt/snapshot", nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot: %d", code)
	}
	var sum sampling.Summary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Seen != 5 {
		t.Errorf("rejected batches leaked ticks: seen=%d, want 5", sum.Seen)
	}
}

func TestListAndMetrics(t *testing.T) {
	h := hub.New()
	srv := httptest.NewServer(newServer(h, 0, 0))
	defer srv.Close()
	client := srv.Client()

	code, body := doJSON(t, client, http.MethodGet, srv.URL+"/v1/streams", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `"streams":[]`) {
		t.Errorf("empty list: %d %s", code, body)
	}
	for _, id := range []string{"b", "a"} {
		if code, _ := doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/"+id,
			map[string]any{"spec": "systematic:interval=2"}); code != http.StatusCreated {
			t.Fatalf("create %s: %d", id, code)
		}
	}
	if _, err := h.OfferBatch("a", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}

	code, body = doJSON(t, client, http.MethodGet, srv.URL+"/v1/streams", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `"streams":["a","b"]`) {
		t.Errorf("list: %d %s", code, body)
	}

	code, body = doJSON(t, client, http.MethodGet, srv.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, line := range []string{"sampled_streams 2", "sampled_ticks_total 4", "sampled_samples_kept_total 2", "sampled_streams_created_total 2"} {
		if !strings.Contains(string(body), line) {
			t.Errorf("metrics missing %q:\n%s", line, body)
		}
	}
}

// TestOversizedBody checks that blowing the body cap is a 413 (split
// the batch and retry), distinct from a malformed-body 400.
func TestOversizedBody(t *testing.T) {
	srv := httptest.NewServer(newServer(hub.New(), 128, 0))
	defer srv.Close()
	client := srv.Client()

	if code, _ := doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/s",
		map[string]any{"spec": "systematic:interval=2"}); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	big := make([]float64, 1000)
	for _, ctype := range []string{"application/json", "text/plain"} {
		body, err := json.Marshal(big)
		if err != nil {
			t.Fatal(err)
		}
		payload := string(body)
		if ctype == "text/plain" {
			payload = strings.Repeat("1 ", 1000)
		}
		resp, err := client.Post(srv.URL+"/v1/streams/s/ticks", ctype, strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("oversized %s body: %d, want 413", ctype, resp.StatusCode)
		}
	}
}

// TestBudgetAndSeedOptions checks that the create body's seed/budget
// fields reach the engine: the seed overrides the spec's and the budget
// caps kept samples.
func TestBudgetAndSeedOptions(t *testing.T) {
	srv := httptest.NewServer(newServer(hub.New(), 0, 0))
	defer srv.Close()
	client := srv.Client()

	code, body := doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/s", map[string]any{
		"spec": "bernoulli:rate=0.5", "seed": 99, "budget": 3,
	})
	if code != http.StatusCreated {
		t.Fatalf("PUT: %d %s", code, body)
	}
	series := heavyTailedSeries(7, 200)
	code, body = doJSON(t, client, http.MethodPost, srv.URL+"/v1/streams/s/ticks", series)
	if code != http.StatusOK {
		t.Fatalf("POST: %d %s", code, body)
	}
	code, body = doJSON(t, client, http.MethodGet, srv.URL+"/v1/streams/s/snapshot", nil)
	if code != http.StatusOK {
		t.Fatalf("GET: %d", code)
	}
	var sum sampling.Summary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Kept != 3 || sum.Budget != 3 {
		t.Errorf("budget not enforced: kept=%d budget=%d", sum.Kept, sum.Budget)
	}
	if !strings.Contains(sum.Spec, "seed=99") {
		t.Errorf("seed option not injected into spec: %s", sum.Spec)
	}
	// WithSeed on a seedless technique must fail loudly as a 400.
	code, _ = doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/s2", map[string]any{
		"spec": "systematic:interval=10", "seed": 1,
	})
	if code != http.StatusBadRequest {
		t.Errorf("seed on systematic: got %d, want 400", code)
	}
}

// TestFinishErrorStillRemoves: an engine whose finalization fails (a
// 5-sample draw over a 3-tick stream) is still torn down by DELETE, and
// the summary carries the error.
func TestFinishErrorStillRemoves(t *testing.T) {
	srv := httptest.NewServer(newServer(hub.New(), 0, 0))
	defer srv.Close()
	client := srv.Client()

	if code, _ := doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/s",
		map[string]any{"spec": "simple:n=5"}); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	if code, _ := doJSON(t, client, http.MethodPost, srv.URL+"/v1/streams/s/ticks",
		[]float64{1, 2, 3}); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	code, body := doJSON(t, client, http.MethodDelete, srv.URL+"/v1/streams/s", nil)
	if code != http.StatusOK {
		t.Fatalf("DELETE: %d %s", code, body)
	}
	var fin finishResponse
	if err := json.Unmarshal(body, &fin); err != nil {
		t.Fatal(err)
	}
	if fin.Summary.Err == nil {
		t.Errorf("finish error lost: %s", body)
	}
	if code, _ = doJSON(t, client, http.MethodGet, srv.URL+"/v1/streams/s/snapshot", nil); code != http.StatusNotFound {
		t.Errorf("stream survived failed finish: %d", code)
	}
}

// TestHurstEndpoint drives the estimator surface over the wire: create
// with an estimator, ingest LRD traffic, read the live Hurst block from
// its endpoint and from the snapshot, and check the 404/400 edges.
func TestHurstEndpoint(t *testing.T) {
	h := hub.New()
	srv := httptest.NewServer(newServer(h, 0, 0))
	defer srv.Close()
	client := srv.Client()

	status, body := doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/lrd",
		map[string]any{"spec": "systematic:interval=8", "estimator": "aggvar"})
	if status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, body)
	}
	gen, err := lrd.NewFGN(0.8, 1<<13, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	series := gen.Generate(dist.NewRand(31))
	status, body = doJSON(t, client, http.MethodPost, srv.URL+"/v1/streams/lrd/ticks", series)
	if status != http.StatusOK {
		t.Fatalf("ticks: %d %s", status, body)
	}

	status, body = doJSON(t, client, http.MethodGet, srv.URL+"/v1/streams/lrd/hurst", nil)
	if status != http.StatusOK {
		t.Fatalf("hurst: %d %s", status, body)
	}
	var hs sampling.HurstSummary
	if err := json.Unmarshal(body, &hs); err != nil {
		t.Fatalf("hurst block %s: %v", body, err)
	}
	if hs.Method != "aggvar" || !hs.Input.OK {
		t.Errorf("hurst block not resolved: %s", body)
	}
	if hs.Input.H < 0.5 || hs.Input.H > 1.0 {
		t.Errorf("input H = %g, want LRD range for H=0.8 fGn", hs.Input.H)
	}

	// The snapshot document embeds the same block.
	status, body = doJSON(t, client, http.MethodGet, srv.URL+"/v1/streams/lrd/snapshot", nil)
	if status != http.StatusOK {
		t.Fatalf("snapshot: %d %s", status, body)
	}
	var sum sampling.Summary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Hurst == nil || sum.Hurst.Input.H != hs.Input.H {
		t.Errorf("snapshot hurst block disagrees with endpoint: %s", body)
	}

	// Metrics aggregate the estimating stream.
	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"sampled_hurst_streams_estimating 1", "sampled_hurst_input_h_mean", "sampled_hurst_drift_mean"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// A stream without an estimator has no hurst subresource.
	status, _ = doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/plain",
		map[string]any{"spec": "systematic:interval=8"})
	if status != http.StatusCreated {
		t.Fatal("plain create failed")
	}
	status, body = doJSON(t, client, http.MethodGet, srv.URL+"/v1/streams/plain/hurst", nil)
	if status != http.StatusNotFound || !strings.Contains(string(body), "no estimator") {
		t.Errorf("hurst on estimator-less stream: %d %s", status, body)
	}
	// Unknown stream: plain 404.
	if status, _ = doJSON(t, client, http.MethodGet, srv.URL+"/v1/streams/ghost/hurst", nil); status != http.StatusNotFound {
		t.Errorf("hurst on missing stream: %d", status)
	}
	// Unknown estimator name: 400 at create.
	status, body = doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/bad",
		map[string]any{"spec": "systematic:interval=8", "estimator": "psychic"})
	if status != http.StatusBadRequest {
		t.Errorf("unknown estimator: %d %s", status, body)
	}
}

// TestMetricsHurstCache: the O(streams) Hurst aggregate on /metrics is
// recomputed at most once per refresh period, so scraping cannot become
// an ingest stall; a zero period always recomputes.
func TestMetricsHurstCache(t *testing.T) {
	h := hub.New()
	srv := httptest.NewServer(newServer(h, 0, time.Hour))
	defer srv.Close()
	scrape := func() string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if !strings.Contains(scrape(), "sampled_hurst_streams_estimating 0") {
		t.Fatal("fresh hub should report 0 estimating streams")
	}
	status, body := doJSON(t, srv.Client(), http.MethodPut, srv.URL+"/v1/streams/s",
		map[string]any{"spec": "systematic:interval=8", "estimator": "aggvar"})
	if status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, body)
	}
	// Within the period the cached aggregate still shows 0.
	if !strings.Contains(scrape(), "sampled_hurst_streams_estimating 0") {
		t.Error("aggregate recomputed inside the refresh period")
	}
	// A zero period recomputes every scrape and sees the new stream.
	live := httptest.NewServer(newServer(h, 0, 0))
	defer live.Close()
	resp, err := live.Client().Get(live.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(data), "sampled_hurst_streams_estimating 1") {
		t.Errorf("uncached scrape missed the stream:\n%s", data)
	}
}

// TestGroupEndpoints drives the v2 comparison-group resource over the
// wire: create with all five techniques, batch ingest, live comparison,
// list, group metrics, finish with per-member tails, and the error
// mapping of the group namespace.
func TestGroupEndpoints(t *testing.T) {
	h := hub.New()
	srv := httptest.NewServer(newServer(h, 0, 0))
	defer srv.Close()
	client := srv.Client()

	specs := []string{
		"systematic:interval=50,offset=7",
		"stratified:interval=50,seed=11",
		"simple:n=100,seed=5",
		"bernoulli:rate=0.02,seed=13",
		"bss:interval=50,L=5,eps=1.0",
	}
	code, body := doJSON(t, client, http.MethodPut, srv.URL+"/v1/groups/cmp",
		map[string]any{"specs": specs, "estimator": "aggvar"})
	if code != http.StatusCreated {
		t.Fatalf("PUT group: %d %s", code, body)
	}

	series := heavyTailedSeries(42, 5000)
	for off := 0; off < len(series); off += 1000 {
		code, body := doJSON(t, client, http.MethodPost, srv.URL+"/v1/groups/cmp/ticks", series[off:off+1000])
		if code != http.StatusOK {
			t.Fatalf("POST group ticks: %d %s", code, body)
		}
		var resp offerResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Accepted != 1000 {
			t.Fatalf("group ticks: accepted %d of 1000", resp.Accepted)
		}
	}

	code, body = doJSON(t, client, http.MethodGet, srv.URL+"/v1/groups/cmp", nil)
	if code != http.StatusOK {
		t.Fatalf("GET group: %d %s", code, body)
	}
	var cmp sampling.Comparison
	if err := json.Unmarshal(body, &cmp); err != nil {
		t.Fatalf("comparison %s: %v", body, err)
	}
	if cmp.Seen != len(series) || len(cmp.Members) != len(specs) || cmp.Finished {
		t.Fatalf("comparison: seen=%d members=%d finished=%v", cmp.Seen, len(cmp.Members), cmp.Finished)
	}
	for i, m := range cmp.Members {
		// Each member over the wire must match a standalone engine fed
		// the same series — the group adds observation, not distortion.
		ref, err := sampling.New(sampling.MustParse(specs[i]))
		if err != nil {
			t.Fatal(err)
		}
		ref.OfferBatch(series)
		want := ref.Snapshot()
		if m.Summary.Kept != want.Kept || m.Summary.Seen != want.Seen {
			t.Errorf("member %d (%s): kept=%d seen=%d, standalone kept=%d seen=%d",
				i, specs[i], m.Summary.Kept, m.Summary.Seen, want.Kept, want.Seen)
		}
	}

	code, body = doJSON(t, client, http.MethodGet, srv.URL+"/v1/groups", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `"groups":["cmp"]`) {
		t.Errorf("group list: %d %s", code, body)
	}

	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range []string{"sampled_groups 1", "sampled_groups_created_total 1",
		"sampled_group_ticks_total 5000"} {
		if !strings.Contains(string(metrics), line) {
			t.Errorf("metrics missing %q:\n%s", line, metrics)
		}
	}

	code, body = doJSON(t, client, http.MethodDelete, srv.URL+"/v1/groups/cmp", nil)
	if code != http.StatusOK {
		t.Fatalf("DELETE group: %d %s", code, body)
	}
	var fin finishGroupResponse
	if err := json.Unmarshal(body, &fin); err != nil {
		t.Fatal(err)
	}
	if !fin.Comparison.Finished || len(fin.Tails) != len(specs) {
		t.Errorf("group finish: finished=%v tails=%d", fin.Comparison.Finished, len(fin.Tails))
	}
	if len(fin.Tails[2]) != 100 {
		t.Errorf("simple member tail has %d samples, want its full n=100 draw", len(fin.Tails[2]))
	}

	// Error mapping in the group namespace.
	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"snapshot of ghost group", http.MethodGet, "/v1/groups/ghost", nil, http.StatusNotFound},
		{"ticks to ghost group", http.MethodPost, "/v1/groups/ghost/ticks", []float64{1}, http.StatusNotFound},
		{"delete ghost group", http.MethodDelete, "/v1/groups/ghost", nil, http.StatusNotFound},
		{"spec-less group", http.MethodPut, "/v1/groups/bad", map[string]any{"specs": []string{}}, http.StatusBadRequest},
		{"unknown member technique", http.MethodPut, "/v1/groups/bad", map[string]any{"specs": []string{"warp-drive:rate=1"}}, http.StatusBadRequest},
		{"unknown estimator", http.MethodPut, "/v1/groups/bad", map[string]any{"specs": specs, "estimator": "psychic"}, http.StatusBadRequest},
		{"unknown body field", http.MethodPut, "/v1/groups/bad", map[string]any{"specs": specs, "sede": 1}, http.StatusBadRequest},
		{"negative budget", http.MethodPut, "/v1/groups/bad", map[string]any{"specs": specs, "budget": -1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, body := doJSON(t, client, tc.method, srv.URL+tc.path, tc.body); code != tc.want {
			t.Errorf("%s: got %d (%s), want %d", tc.name, code, body, tc.want)
		}
	}
	if code, _ := doJSON(t, client, http.MethodPut, srv.URL+"/v1/groups/dup",
		map[string]any{"specs": specs[:2]}); code != http.StatusCreated {
		t.Fatal("dup setup failed")
	}
	if code, _ := doJSON(t, client, http.MethodPut, srv.URL+"/v1/groups/dup",
		map[string]any{"specs": specs[:2]}); code != http.StatusConflict {
		t.Errorf("duplicate group create: got %d, want 409", code)
	}
}

// TestGroupGoldenSnapshot pins the served comparison document: with a
// fake clock and a deterministic stream, the bytes coming off the wire
// must equal the marshaled form of an identically driven in-process
// group — the daemon adds transport, not content — and spot-checked
// literal fragments pin the wire names and null-for-NaN convention.
func TestGroupGoldenSnapshot(t *testing.T) {
	at := time.Date(2026, 7, 27, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return at }
	h := hub.New(hub.WithClock(clock))
	srv := httptest.NewServer(newServer(h, 0, 0))
	defer srv.Close()

	specs := []string{"systematic:interval=2", "bernoulli:rate=0.5,seed=9"}
	code, body := doJSON(t, srv.Client(), http.MethodPut, srv.URL+"/v1/groups/golden",
		map[string]any{"specs": specs, "estimator": "aggvar"})
	if code != http.StatusCreated {
		t.Fatalf("PUT: %d %s", code, body)
	}
	series := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if code, body := doJSON(t, srv.Client(), http.MethodPost, srv.URL+"/v1/groups/golden/ticks", series); code != http.StatusOK {
		t.Fatalf("POST: %d %s", code, body)
	}
	code, served := doJSON(t, srv.Client(), http.MethodGet, srv.URL+"/v1/groups/golden", nil)
	if code != http.StatusOK {
		t.Fatalf("GET: %d %s", code, served)
	}

	ref, err := sampling.NewGroup(
		[]sampling.Spec{sampling.MustParse(specs[0]), sampling.MustParse(specs[1])},
		sampling.WithEstimator("aggvar"), sampling.WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	ref.OfferBatch(series)
	want, err := json.Marshal(ref.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(served)); got != string(want) {
		t.Errorf("served comparison differs from the golden document:\n got %s\nwant %s", got, want)
	}
	for _, frag := range []string{
		`"seen":8`, `"mean":4.5`, `"method":"aggvar"`, `"kept_ratio":0.5`,
		`"technique":"systematic"`, `"hurst_drift":null`, `"uptime_ns":0`,
		`"at":"2026-07-27T12:00:00Z"`,
	} {
		if !strings.Contains(string(served), frag) {
			t.Errorf("golden document missing %s:\n%s", frag, served)
		}
	}
}
