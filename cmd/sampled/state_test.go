package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/sampling"
	"repro/sampling/wire"
)

// bootDaemon runs the daemon with the given extra flags on a loopback
// port and returns its base URL, a stop function (graceful shutdown,
// waits for exit) and the exit error channel.
func bootDaemon(t *testing.T, extra ...string) (base string, stop func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() { done <- run(ctx, args, ready) }()
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	stop = func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(15 * time.Second):
			return fmt.Errorf("daemon did not exit")
		}
	}
	return base, stop
}

// getStatus fetches url and returns the status code.
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// snapshotDoc pulls the summary fields the durability tests compare.
type snapshotDoc struct {
	Seen      int64 `json:"seen"`
	Kept      int64 `json:"kept"`
	Qualified int64 `json:"qualified"`
}

func getSnapshot(t *testing.T, base, id string) snapshotDoc {
	t.Helper()
	status, body := doJSON(t, http.DefaultClient, http.MethodGet, base+"/v1/streams/"+id+"/snapshot", nil)
	if status != http.StatusOK {
		t.Fatalf("snapshot %s: status %d: %s", id, status, body)
	}
	var doc snapshotDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestHealthReadyEndpoints: both probes answer on a plain daemon.
func TestHealthReadyEndpoints(t *testing.T) {
	base, stop := bootDaemon(t)
	defer stop()
	if got := getStatus(t, base+"/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d", got)
	}
	if got := getStatus(t, base+"/readyz"); got != http.StatusOK {
		t.Fatalf("readyz = %d", got)
	}
}

// TestStateEndpoints drives the per-stream state resource over HTTP:
// export, install under a new id (identical snapshots), detach
// (stream gone, blob comes back), and the corrupt-blob 400.
func TestStateEndpoints(t *testing.T) {
	base, stop := bootDaemon(t)
	defer stop()
	client := http.DefaultClient

	status, body := doJSON(t, client, http.MethodPut, base+"/v1/streams/orig",
		map[string]any{"spec": "bernoulli:rate=0.1", "seed": 7, "estimator": "aggvar"})
	if status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, body)
	}
	series := heavyTailedSeries(3, 4000)
	if status, body = doJSON(t, client, http.MethodPost, base+"/v1/streams/orig/ticks", series); status != http.StatusOK {
		t.Fatalf("ingest: %d %s", status, body)
	}

	resp, err := client.Get(base + "/v1/streams/orig/state")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(blob) == 0 {
		t.Fatalf("state export: %d, %d bytes", resp.StatusCode, len(blob))
	}

	req, _ := http.NewRequest(http.MethodPut, base+"/v1/streams/copy/state", bytes.NewReader(blob))
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("state install: %d", resp.StatusCode)
	}
	a, b := getSnapshot(t, base, "orig"), getSnapshot(t, base, "copy")
	if a != b {
		t.Fatalf("installed copy diverges: %+v vs %+v", b, a)
	}

	// Both must keep identical counters over an identical suffix —
	// the restored engine carries the exact RNG position.
	suffix := heavyTailedSeries(4, 2000)
	for _, id := range []string{"orig", "copy"} {
		if status, body = doJSON(t, client, http.MethodPost, base+"/v1/streams/"+id+"/ticks", suffix); status != http.StatusOK {
			t.Fatalf("suffix ingest %s: %d %s", id, status, body)
		}
	}
	a, b = getSnapshot(t, base, "orig"), getSnapshot(t, base, "copy")
	if a != b {
		t.Fatalf("copy diverges after suffix: %+v vs %+v", b, a)
	}

	// Detach: blob returned, stream gone.
	req, _ = http.NewRequest(http.MethodDelete, base+"/v1/streams/copy/state", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	detached, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(detached) == 0 {
		t.Fatalf("detach: %d, %d bytes", resp.StatusCode, len(detached))
	}
	if status, _ = doJSON(t, client, http.MethodGet, base+"/v1/streams/copy/snapshot", nil); status != http.StatusNotFound {
		t.Fatalf("detached stream still answers: %d", status)
	}

	// A corrupt blob is a 400, a duplicate id a 409.
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0x20
	req, _ = http.NewRequest(http.MethodPut, base+"/v1/streams/bad/state", bytes.NewReader(bad))
	resp, _ = client.Do(req)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt install: %d, want 400", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodPut, base+"/v1/streams/orig/state", bytes.NewReader(blob))
	resp, _ = client.Do(req)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate install: %d, want 409", resp.StatusCode)
	}
}

// TestCheckpointRestartCycle is the zero-downtime restart invariant
// end to end over the real run() path: ingest, graceful shutdown
// (final checkpoint), reboot from the checkpoint dir, and require the
// restored daemon to carry identical counters AND produce identical
// kept counts over an identical suffix — against a control daemon
// that never stopped.
func TestCheckpointRestartCycle(t *testing.T) {
	dir := t.TempDir()
	client := http.DefaultClient
	specs := map[string]map[string]any{
		"sys": {"spec": "systematic:interval=50"},
		"ber": {"spec": "bernoulli:rate=0.02", "seed": 9},
		"res": {"spec": "simple:n=64", "seed": 9},
		"est": {"spec": "stratified:interval=64", "seed": 9, "estimator": "aggvar"},
	}
	series := heavyTailedSeries(11, 20000)
	cut := 12000

	base, stop := bootDaemon(t, "-checkpoint-dir", dir, "-checkpoint-interval", "1h")
	ctrlBase, ctrlStop := bootDaemon(t)
	defer ctrlStop()
	for _, b := range []string{base, ctrlBase} {
		for id, req := range specs {
			if status, body := doJSON(t, client, http.MethodPut, b+"/v1/streams/"+id, req); status != http.StatusCreated {
				t.Fatalf("create %s: %d %s", id, status, body)
			}
			if status, body := doJSON(t, client, http.MethodPost, b+"/v1/streams/"+id+"/ticks", series[:cut]); status != http.StatusOK {
				t.Fatalf("ingest %s: %d %s", id, status, body)
			}
		}
	}
	before := map[string]snapshotDoc{}
	for id := range specs {
		before[id] = getSnapshot(t, base, id)
	}

	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "hub.ckpt")); err != nil {
		t.Fatalf("no checkpoint after shutdown: %v", err)
	}

	base2, stop2 := bootDaemon(t, "-checkpoint-dir", dir, "-checkpoint-interval", "1h")
	defer stop2()
	for id := range specs {
		if got := getSnapshot(t, base2, id); got != before[id] {
			t.Fatalf("stream %s after restart: %+v, want %+v", id, got, before[id])
		}
	}
	// The restored process must keep sampling exactly as the control
	// that never restarted.
	for id := range specs {
		for _, b := range []string{base2, ctrlBase} {
			if status, body := doJSON(t, client, http.MethodPost, b+"/v1/streams/"+id+"/ticks", series[cut:]); status != http.StatusOK {
				t.Fatalf("suffix ingest %s: %d %s", id, status, body)
			}
		}
		restarted, control := getSnapshot(t, base2, id), getSnapshot(t, ctrlBase, id)
		if restarted != control {
			t.Fatalf("stream %s diverged after restart: %+v vs control %+v", id, restarted, control)
		}
	}
	// The Hurst ladder survives too: the estimator stream reports the
	// same H from both processes.
	for _, pair := range []struct{ b, name string }{{base2, "restarted"}, {ctrlBase, "control"}} {
		if status, _ := doJSON(t, client, http.MethodGet, pair.b+"/v1/streams/est/hurst", nil); status != http.StatusOK {
			t.Fatalf("%s hurst: %d", pair.name, status)
		}
	}
	_, hr := doJSON(t, client, http.MethodGet, base2+"/v1/streams/est/hurst", nil)
	_, hc := doJSON(t, client, http.MethodGet, ctrlBase+"/v1/streams/est/hurst", nil)
	if string(hr) != string(hc) {
		t.Fatalf("hurst diverged after restart:\n restarted: %s\n control:   %s", hr, hc)
	}
}

// TestEvictArchive: with -checkpoint-dir and a TTL, a swept stream's
// final state lands under evicted/ and still restores into an engine.
func TestEvictArchive(t *testing.T) {
	dir := t.TempDir()
	base, stop := bootDaemon(t,
		"-checkpoint-dir", dir, "-checkpoint-interval", "1h",
		"-ttl", "200ms", "-sweep-every", "50ms")
	defer stop()
	client := http.DefaultClient
	if status, body := doJSON(t, client, http.MethodPut, base+"/v1/streams/fleeting",
		map[string]any{"spec": "systematic:interval=10"}); status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, body)
	}
	if status, _ := doJSON(t, client, http.MethodPost, base+"/v1/streams/fleeting/ticks", heavyTailedSeries(2, 500)); status != http.StatusOK {
		t.Fatal("ingest failed")
	}
	path := filepath.Join(dir, "evicted", "fleeting.engine")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("evicted stream was never archived")
		}
		time.Sleep(50 * time.Millisecond)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sampling.RestoreEngine(blob)
	if err != nil {
		t.Fatalf("archived blob does not restore: %v", err)
	}
	if got := eng.Snapshot().Seen; got != 500 {
		t.Fatalf("archived engine saw %d ticks, want 500", got)
	}
}

// TestRouterEndToEnd boots two real backends and a router over them,
// then drives every wire through the router: creates, JSON ingest,
// binary ingest, a persistent session demuxed per frame, snapshots,
// merged listings and router metrics. The aggregate must balance:
// every stream's Seen equals everything ingested for it, and the two
// backends together hold exactly the created streams.
func TestRouterEndToEnd(t *testing.T) {
	b1, stop1 := bootDaemon(t)
	defer stop1()
	b2, stop2 := bootDaemon(t)
	defer stop2()
	routerBase, stopRouter := bootDaemon(t, "-route",
		strings.TrimPrefix(b1, "http://")+","+strings.TrimPrefix(b2, "http://"))
	defer stopRouter()
	client := http.DefaultClient

	if got := getStatus(t, routerBase+"/readyz"); got != http.StatusOK {
		t.Fatalf("router readyz = %d", got)
	}

	const streams = 8
	const ticksEach = 600
	ids := make([]string, streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("flow-%02d", i)
		if status, body := doJSON(t, client, http.MethodPut, routerBase+"/v1/streams/"+ids[i],
			map[string]any{"spec": "systematic:interval=7"}); status != http.StatusCreated {
			t.Fatalf("create via router: %d %s", status, body)
		}
	}
	series := heavyTailedSeries(21, ticksEach)
	// Half the ingest as JSON, half as one persistent session carrying
	// frames for every stream interleaved.
	for _, id := range ids {
		if status, body := doJSON(t, client, http.MethodPost, routerBase+"/v1/streams/"+id+"/ticks", series[:ticksEach/2]); status != http.StatusOK {
			t.Fatalf("ingest via router: %d %s", status, body)
		}
	}
	var buf bytes.Buffer
	enc := wire.NewEncoder(&buf)
	for off := ticksEach / 2; off < ticksEach; off += 100 {
		for _, id := range ids {
			end := off + 100
			if end > ticksEach {
				end = ticksEach
			}
			if err := enc.Encode(id, series[off:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
	req, _ := http.NewRequest(http.MethodPost, routerBase+"/v1/session", bytes.NewReader(buf.Bytes()))
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sessionBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session via router: %d %s", resp.StatusCode, sessionBody)
	}
	var sr sessionResponse
	if err := json.Unmarshal(sessionBody, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Accepted != int64(streams*ticksEach/2) {
		t.Fatalf("session accepted %d ticks, want %d", sr.Accepted, streams*ticksEach/2)
	}

	// Every stream is fully fed, wherever it landed.
	for _, id := range ids {
		if got := getSnapshot(t, routerBase, id); got.Seen != int64(ticksEach) {
			t.Fatalf("stream %s saw %d ticks via router, want %d", id, got.Seen, ticksEach)
		}
	}
	// The merged listing covers exactly the created streams, and both
	// backends hold a share (8 ids over 2 nodes — a placement that
	// lands everything on one node would be a broken ring).
	status, body := doJSON(t, client, http.MethodGet, routerBase+"/v1/streams", nil)
	if status != http.StatusOK {
		t.Fatalf("merged list: %d", status)
	}
	var listDoc struct {
		Streams []string `json:"streams"`
		Count   int      `json:"count"`
	}
	if err := json.Unmarshal(body, &listDoc); err != nil {
		t.Fatal(err)
	}
	if listDoc.Count != streams {
		t.Fatalf("merged list has %d streams, want %d: %v", listDoc.Count, streams, listDoc.Streams)
	}
	var n1, n2 int
	for _, b := range []string{b1, b2} {
		_, lb := doJSON(t, client, http.MethodGet, b+"/v1/streams", nil)
		var part struct {
			Count int `json:"count"`
		}
		json.Unmarshal(lb, &part)
		if b == b1 {
			n1 = part.Count
		} else {
			n2 = part.Count
		}
	}
	if n1+n2 != streams || n1 == 0 || n2 == 0 {
		t.Fatalf("placement %d/%d over two backends, want a split of %d", n1, n2, streams)
	}

	// Router metrics expose membership and forwarding.
	resp, err = client.Get(routerBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"sampled_router_backends_up 2", "sampled_router_requests_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("router metrics missing %q", want)
		}
	}
}

// TestRouterHandoff is the membership-change invariant: streams
// created while a backend is down move onto it — with their counters
// intact — once it comes up, via checkpoint transfer.
func TestRouterHandoff(t *testing.T) {
	b1, stop1 := bootDaemon(t)
	defer stop1()
	// Reserve a port for the late backend so the router can be
	// configured with its address before it exists.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lateAddr := ln.Addr().String()
	ln.Close()

	logger, _ := obs.NewLogger(io.Discard, "text", "error")
	rt, err := newRouter([]string{strings.TrimPrefix(b1, "http://"), lateAddr}, 1<<20, logger, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rt.checkHealth(ctx) // late backend is down: ring is just b1
	if rt.ring.Load().Len() != 1 {
		t.Fatalf("ring has %d members with one backend down", rt.ring.Load().Len())
	}
	routerSrv := httptest.NewServer(rt.handler())
	defer routerSrv.Close()
	client := http.DefaultClient

	const streams = 10
	series := heavyTailedSeries(31, 800)
	ids := make([]string, streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("ho-%02d", i)
		if status, body := doJSON(t, client, http.MethodPut, routerSrv.URL+"/v1/streams/"+ids[i],
			map[string]any{"spec": "bernoulli:rate=0.05", "seed": uint64(i + 1)}); status != http.StatusCreated {
			t.Fatalf("create: %d %s", status, body)
		}
		if status, _ := doJSON(t, client, http.MethodPost, routerSrv.URL+"/v1/streams/"+ids[i]+"/ticks", series); status != http.StatusOK {
			t.Fatal("ingest failed")
		}
	}
	before := map[string]snapshotDoc{}
	for _, id := range ids {
		before[id] = getSnapshot(t, routerSrv.URL, id)
	}

	// The late backend comes up; the next health round must eject
	// nothing, admit it, and move its share of streams over.
	b2, stop2 := bootDaemon(t, "-addr", lateAddr)
	defer stop2()
	rt.checkHealth(ctx)
	if rt.ring.Load().Len() != 2 {
		t.Fatal("ring did not admit the recovered backend")
	}
	_, lb := doJSON(t, client, http.MethodGet, b2+"/v1/streams", nil)
	var part struct {
		Count int `json:"count"`
	}
	json.Unmarshal(lb, &part)
	if part.Count == 0 {
		t.Fatal("no streams moved to the recovered backend — handoff never happened")
	}

	// Every stream still answers through the router with its counters
	// exactly as before the rebalance, wherever it lives now.
	for _, id := range ids {
		if got := getSnapshot(t, routerSrv.URL, id); got != before[id] {
			t.Fatalf("stream %s lost state in handoff: %+v, want %+v", id, got, before[id])
		}
	}
	// And it keeps sampling deterministically: same suffix, same kept
	// count as a control engine fed the whole series in one life.
	suffix := heavyTailedSeries(32, 400)
	for _, id := range ids {
		if status, _ := doJSON(t, client, http.MethodPost, routerSrv.URL+"/v1/streams/"+id+"/ticks", suffix); status != http.StatusOK {
			t.Fatalf("suffix ingest %s failed", id)
		}
		got := getSnapshot(t, routerSrv.URL, id)
		if got.Seen != 1200 {
			t.Fatalf("stream %s saw %d, want 1200", id, got.Seen)
		}
	}
}
