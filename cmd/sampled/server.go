package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/sampling"
	"repro/sampling/estimate"
	"repro/sampling/hub"
	"repro/sampling/wire"
)

// server is the HTTP face of a hub: the v1 stream resource plus the
// observability surface (/metrics, /debug/events and, opt-in,
// /debug/pprof).
type server struct {
	hub     *hub.Hub
	maxBody int64

	// ready backs /readyz: false until the boot-time checkpoint restore
	// completes and false again once shutdown begins draining. nil (the
	// unit-test default) reads as always ready.
	ready *atomic.Bool

	// The binary wire. maxTicks is the frame-declared batch cap (the
	// body cap divided by the 8 bytes a tick occupies on the wire), so
	// a hostile length prefix is refused before any allocation; the
	// decoders pool keeps frame and tick buffers warm across requests
	// and sessions.
	maxTicks int
	decoders sync.Pool

	// The observability layer: every /metrics series renders from reg,
	// rec is the flight recorder behind /debug/events, and the ingest
	// instruments histogram each batch by wire.
	reg          *obs.Registry
	rec          *obs.Recorder
	logger       *slog.Logger
	ingestFrames *obs.Counter
	ingestBytes  *obs.Counter
	ingest       map[string]*wireInstruments

	// statsCache and hurstCache are refreshed once per scrape by the
	// registry's OnScrape hook and read by the func-backed series, all
	// under the registry's scrape lock — one hub.Stats() walk feeds
	// every mirrored counter.
	statsCache hub.Stats
	hurstCache hub.HurstStats

	// The hub's Hurst aggregate costs O(streams) — one engine snapshot
	// and regression per estimating stream — while every other /metrics
	// figure is O(shards). Scrapes therefore reuse a cached aggregate
	// for hurstEvery, so high-frequency scraping cannot stall ingest.
	hurstEvery time.Duration
	hurstMu    sync.Mutex
	hurstAt    time.Time
	hurstStats hub.HurstStats
}

// wireInstruments is one ingest wire's histogram set: decode seconds,
// encoded bytes and ticks per batch.
type wireInstruments struct {
	decode *obs.Histogram
	bytes  *obs.Histogram
	ticks  *obs.Histogram
}

// serverConfig carries the optional observability knobs; the zero
// value (no logger, no pprof, default recorder) is what the unit
// tests run with.
type serverConfig struct {
	logger *slog.Logger
	pprof  bool
	events int
	ready  *atomic.Bool
}

type serverOption func(*serverConfig)

// withLogger attaches the request-scoped structured log.
func withLogger(l *slog.Logger) serverOption {
	return func(c *serverConfig) { c.logger = l }
}

// withPprof mounts net/http/pprof under /debug/pprof/.
func withPprof(on bool) serverOption {
	return func(c *serverConfig) { c.pprof = on }
}

// withEvents sizes the flight recorder ring.
func withEvents(n int) serverOption {
	return func(c *serverConfig) { c.events = n }
}

// withReady connects /readyz to the daemon's readiness flag.
func withReady(ready *atomic.Bool) serverOption {
	return func(c *serverConfig) { c.ready = ready }
}

// newServer builds the daemon's handler around an existing hub. maxBody
// caps request bodies in bytes (0 means the default of 32 MiB) — an
// ingest batch bigger than that should be split by the client anyway.
// hurstEvery is the refresh period of the O(streams) sampled_hurst_*
// aggregate on /metrics; 0 recomputes on every scrape.
func newServer(h *hub.Hub, maxBody int64, hurstEvery time.Duration, opts ...serverOption) http.Handler {
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	cfg := serverConfig{events: 256}
	for _, o := range opts {
		o(&cfg)
	}
	s := &server{hub: h, maxBody: maxBody, hurstEvery: hurstEvery, logger: cfg.logger, ready: cfg.ready}
	s.maxTicks = int(maxBody / 8)
	if s.maxTicks < 1 {
		s.maxTicks = 1
	}
	s.reg = obs.NewRegistry()
	s.rec = obs.NewRecorder(cfg.events)
	s.registerMetrics()

	// Every route is wrapped individually so its duration/size
	// histograms carry the static pattern as the route label and the
	// flight recorder sees the stream id; the "/" catch-all gives
	// unmatched paths a route of their own instead of vanishing.
	routes := []struct {
		pattern string
		label   string
		handler http.Handler
	}{
		{"PUT /v1/streams/{id}", "", http.HandlerFunc(s.createStream)},
		{"POST /v1/session", "", http.HandlerFunc(s.session)},
		{"POST /v1/streams/{id}/ticks", "", http.HandlerFunc(s.offerTicks)},
		{"GET /v1/streams/{id}/snapshot", "", http.HandlerFunc(s.snapshot)},
		{"GET /v1/streams/{id}/hurst", "", http.HandlerFunc(s.hurst)},
		{"GET /v1/streams/{id}/state", "", http.HandlerFunc(s.streamState)},
		{"PUT /v1/streams/{id}/state", "", http.HandlerFunc(s.putStreamState)},
		{"DELETE /v1/streams/{id}/state", "", http.HandlerFunc(s.detachStreamState)},
		{"DELETE /v1/streams/{id}", "", http.HandlerFunc(s.finishStream)},
		{"GET /v1/streams", "", http.HandlerFunc(s.listStreams)},
		{"PUT /v1/groups/{id}", "", http.HandlerFunc(s.createGroup)},
		{"POST /v1/groups/{id}/ticks", "", http.HandlerFunc(s.offerGroupTicks)},
		{"GET /v1/groups/{id}/state", "", http.HandlerFunc(s.groupState)},
		{"PUT /v1/groups/{id}/state", "", http.HandlerFunc(s.putGroupState)},
		{"DELETE /v1/groups/{id}/state", "", http.HandlerFunc(s.detachGroupState)},
		{"GET /v1/groups/{id}", "", http.HandlerFunc(s.groupSnapshot)},
		{"DELETE /v1/groups/{id}", "", http.HandlerFunc(s.finishGroup)},
		{"GET /v1/groups", "", http.HandlerFunc(s.listGroups)},
		{"GET /healthz", "", http.HandlerFunc(s.healthz)},
		{"GET /readyz", "", http.HandlerFunc(s.readyz)},
		{"GET /metrics", "", http.HandlerFunc(s.metrics)},
		{"GET /debug/events", "", s.rec},
		{"/", "other", http.HandlerFunc(s.notFound)},
	}
	labels := make([]string, len(routes))
	for i, rt := range routes {
		labels[i] = rt.label
		if labels[i] == "" {
			labels[i] = rt.pattern
		}
	}
	httpObs := obs.NewHTTPObserver(s.reg, "sampled", labels, s.rec, cfg.logger)
	mux := http.NewServeMux()
	for i, rt := range routes {
		mux.Handle(rt.pattern, httpObs.Wrap(labels[i], rt.handler))
	}
	if cfg.pprof {
		// Deliberately uninstrumented: a 30s CPU profile in the
		// duration histogram would bury the serving tail.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// registerMetrics declares every /metrics family. The hub-owned
// series keep their pre-obs names and HELP text byte for byte; they
// read from the per-scrape stats caches so one Stats() walk (and one
// rate-limited Hurst aggregate) serves the whole exposition.
func (s *server) registerMetrics() {
	r := s.reg
	r.OnScrape(func() {
		s.statsCache = s.hub.Stats()
		s.hurstCache = s.hurstAggregate()
	})
	counter := func(name, help string, v func() float64) { r.NewCounterFunc(name, help, v) }
	gauge := func(name, help string, v func() float64) { r.NewGaugeFunc(name, help, v) }

	gauge("sampled_streams", "Live sampling streams.",
		func() float64 { return float64(s.statsCache.Streams) })
	counter("sampled_streams_created_total", "Streams ever created.",
		func() float64 { return float64(s.statsCache.Created) })
	counter("sampled_streams_evicted_total", "Streams evicted after the idle TTL.",
		func() float64 { return float64(s.statsCache.Evicted) })
	counter("sampled_ticks_total", "Ticks ingested across all streams.",
		func() float64 { return float64(s.statsCache.Ticks) })
	counter("sampled_samples_kept_total", "Samples kept across all streams.",
		func() float64 { return float64(s.statsCache.Kept) })
	gauge("sampled_groups", "Live comparison groups.",
		func() float64 { return float64(s.statsCache.Groups) })
	counter("sampled_groups_created_total", "Comparison groups ever created.",
		func() float64 { return float64(s.statsCache.GroupsCreated) })
	counter("sampled_groups_evicted_total", "Comparison groups evicted after the idle TTL.",
		func() float64 { return float64(s.statsCache.GroupsEvicted) })
	counter("sampled_group_ticks_total", "Input ticks ingested by comparison groups (each fans out to every member).",
		func() float64 { return float64(s.statsCache.GroupTicks) })
	counter("sampled_group_samples_kept_total", "Samples kept across all group members.",
		func() float64 { return float64(s.statsCache.GroupKept) })
	gauge("sampled_uptime_seconds", "Seconds since the hub started.",
		func() float64 { return s.statsCache.Uptime.Seconds() })
	gauge("sampled_ticks_per_second_avg", "Lifetime average ingest rate.",
		func() float64 { return s.statsCache.TicksPerSec })

	gauge("sampled_hurst_streams_estimating", "Live streams carrying an online Hurst estimator.",
		func() float64 { return float64(s.hurstCache.Estimating) })
	// The means stay NaN until a stream resolves. They are emitted on
	// every scrape regardless — a NaN sample, not a vanishing series —
	// so scrapers never see series churn; null-for-NaN is a JSON-wire
	// convention only.
	gauge("sampled_hurst_input_h_mean", "Mean pre-sampling Hurst estimate over resolved streams.",
		func() float64 { return s.hurstCache.MeanInputH })
	gauge("sampled_hurst_kept_h_mean", "Mean post-sampling Hurst estimate over resolved streams.",
		func() float64 { return s.hurstCache.MeanKeptH })
	gauge("sampled_hurst_drift_mean", "Mean kept-minus-input Hurst drift over resolved streams.",
		func() float64 { return s.hurstCache.MeanDrift })

	s.ingestFrames = r.NewCounter("sampled_ingest_frames_total",
		"Binary tick-batch frames decoded (single-shot POSTs and streaming sessions).")
	s.ingestBytes = r.NewCounter("sampled_ingest_bytes_total",
		"Bytes of binary tick-batch frames decoded.")
	decode := r.NewHistogramVec("sampled_ingest_decode_seconds",
		"Time to decode one ingest batch, by wire.", obs.ExpBuckets(1e-6, 4, 10), "wire")
	frameBytes := r.NewHistogramVec("sampled_ingest_frame_bytes",
		"Encoded size of one ingest batch, by wire.", obs.ExpBuckets(64, 4, 10), "wire")
	batchTicks := r.NewHistogramVec("sampled_ingest_batch_ticks",
		"Ticks per ingest batch, by wire.", obs.ExpBuckets(1, 4, 10), "wire")
	s.ingest = make(map[string]*wireInstruments, 4)
	for _, w := range []string{"json", "text", "binary", "session"} {
		s.ingest[w] = &wireInstruments{
			decode: decode.With(w),
			bytes:  frameBytes.With(w),
			ticks:  batchTicks.With(w),
		}
	}

	version, goVersion := obs.BuildInfo()
	r.NewGaugeVec("sampled_build_info", "Build metadata; the value is always 1.",
		"version", "go_version").With(version, goVersion).Set(1)
	obs.RegisterRuntime(r, "sampled")
}

// observeIngest records one decoded batch into the wire's histograms.
// bytes < 0 (an unknown content length) skips the size observation.
func (s *server) observeIngest(wire string, decode time.Duration, bytes int64, ticks int) {
	wi := s.ingest[wire]
	wi.decode.Observe(decode.Seconds())
	if bytes >= 0 {
		wi.bytes.Observe(float64(bytes))
	}
	wi.ticks.Observe(float64(ticks))
}

// notFound is the instrumented catch-all: unmatched paths surface as
// route="other" in the request metrics instead of bypassing them.
func (s *server) notFound(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such route"})
}

// statusFor maps the typed error chain onto an HTTP status: client
// mistakes (bad specs, unknown techniques, rejected parameters) are
// 400s, lifecycle conflicts are 404/409, anything untyped is a 500.
func statusFor(err error) int {
	var pe *sampling.ParamError
	switch {
	case errors.Is(err, hub.ErrStreamNotFound):
		return http.StatusNotFound
	case errors.Is(err, hub.ErrStreamExists):
		return http.StatusConflict
	case errors.Is(err, sampling.ErrUnknownTechnique),
		errors.Is(err, sampling.ErrBadSpec),
		errors.Is(err, sampling.ErrUnknownEstimator),
		errors.Is(err, hub.ErrInvalidID),
		errors.Is(err, sampling.ErrBadState),
		errors.Is(err, sampling.ErrStateVersion),
		errors.Is(err, sampling.ErrStateChecksum),
		errors.As(err, &pe):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), map[string]string{"error": err.Error()})
}

// writeBodyError reports a request-body failure: 413 when the body blew
// the size cap (retryable by splitting the batch), 400 otherwise.
func writeBodyError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		status = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, status, map[string]string{"error": "body: " + err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// createRequest is the body of PUT /v1/streams/{id}. The spec comes in
// either wire form — the object {"technique": ..., "params": {...}} or
// the spec string "bss:rate=1e-3,L=10" — and seed/budget/estimator map
// onto the engine options of the public API ("estimator" names an
// online Hurst estimation method: aggvar, wavelet or rs).
type createRequest struct {
	Spec      sampling.Spec `json:"spec"`
	Seed      *uint64       `json:"seed,omitempty"`
	Budget    int           `json:"budget,omitempty"`
	Estimator string        `json:"estimator,omitempty"`
}

// decodeStrict decodes exactly one JSON value from r, rejecting unknown
// object fields and trailing input — a concatenated second value means
// the client built the request wrong, and dropping it silently would
// corrupt ingest counts.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// engineOptions maps the shared seed/budget/estimator request fields
// onto engine options, reporting the 400 itself on a bad budget; the
// second return is false when a response has already been written.
func engineOptions(w http.ResponseWriter, seed *uint64, budget int, estimator string) ([]sampling.Option, bool) {
	var opts []sampling.Option
	if seed != nil {
		opts = append(opts, sampling.WithSeed(*seed))
	}
	// 0 is the documented "unlimited" default; anything else below 1 is
	// a client mistake and must not silently create an unbounded stream.
	if budget < 0 {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("budget %d must be >= 0", budget)})
		return nil, false
	}
	if budget > 0 {
		opts = append(opts, sampling.WithBudget(budget))
	}
	if estimator != "" {
		opts = append(opts, sampling.WithEstimator(estimate.Method(estimator)))
	}
	return opts, true
}

func (s *server) createStream(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, s.maxBody), &req); err != nil {
		writeBodyError(w, err)
		return
	}
	opts, ok := engineOptions(w, req.Seed, req.Budget, req.Estimator)
	if !ok {
		return
	}
	id := r.PathValue("id")
	if err := s.hub.Create(id, req.Spec, opts...); err != nil {
		writeError(w, err)
		return
	}
	sum, err := s.hub.Snapshot(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, sum)
}

// offerResponse is the body of a successful tick ingest.
type offerResponse struct {
	Accepted int `json:"accepted"` // ticks offered to the engine
	Kept     int `json:"kept"`     // samples this batch finalized
}

// readTicks parses one ingest batch from the request body. Two body
// formats: a JSON array of numbers (Content-Type application/json) and
// newline- or whitespace-separated decimal floats (anything else) — the
// latter is what `tr` and `awk` pipelines produce. On a malformed body
// readTicks writes the 400/413 itself and returns ok=false.
func (s *server) readTicks(w http.ResponseWriter, r *http.Request) (values []float64, ok bool) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		// Decode through pointers so a null element — which plain
		// []float64 silently turns into a phantom 0.0 tick — is
		// distinguishable and rejected.
		var boxed []*float64
		if err := decodeStrict(body, &boxed); err != nil {
			writeBodyError(w, err)
			return nil, false
		}
		values = make([]float64, len(boxed))
		for i, p := range boxed {
			if p == nil {
				writeJSON(w, http.StatusBadRequest,
					map[string]string{"error": fmt.Sprintf("tick %d: null is not a tick value", i)})
				return nil, false
			}
			values[i] = *p
		}
		return values, true
	}
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": fmt.Sprintf("tick %d: %v", len(values), err)})
			return nil, false
		}
		// ParseFloat accepts NaN/Inf spellings, but one NaN poisons
		// the stream's running moments for the rest of its life.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": fmt.Sprintf("tick %d: non-finite value %v", len(values), v)})
			return nil, false
		}
		values = append(values, v)
	}
	if err := sc.Err(); err != nil {
		writeBodyError(w, err)
		return nil, false
	}
	return values, true
}

// readTicksObserved is readTicks plus the per-wire decode histograms:
// parse time, declared body size and batch tick count land under
// wire="json" or wire="text".
func (s *server) readTicksObserved(w http.ResponseWriter, r *http.Request) ([]float64, bool) {
	wireName := "text"
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		wireName = "json"
	}
	start := time.Now()
	values, ok := s.readTicks(w, r)
	if !ok {
		return nil, false
	}
	s.observeIngest(wireName, time.Since(start), r.ContentLength, len(values))
	return values, true
}

// offerTicks ingests one batch into a stream. Ticks within one stream
// must be posted sequentially; batches for different streams are fully
// concurrent. A Content-Type of application/x-tickbatch switches the
// body to binary tick-batch frames (any number, back to back); JSON
// and whitespace text stay as before.
func (s *server) offerTicks(w http.ResponseWriter, r *http.Request) {
	if isTickBatch(r) {
		s.offerFrames(w, r, s.hub.OfferBatch)
		return
	}
	values, ok := s.readTicksObserved(w, r)
	if !ok {
		return
	}
	kept, err := s.hub.OfferBatch(r.PathValue("id"), values)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, offerResponse{Accepted: len(values), Kept: kept})
}

// isTickBatch reports whether the request body is binary tick-batch
// frames.
func isTickBatch(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Content-Type"), wire.ContentType)
}

// decoder takes a pooled frame decoder (warm buffers, shared tick cap)
// for one request body; return it with s.decoders.Put when done.
func (s *server) decoder(r io.Reader) *wire.Decoder {
	if d, ok := s.decoders.Get().(*wire.Decoder); ok {
		d.Reset(r)
		return d
	}
	return wire.NewDecoder(r, s.maxTicks)
}

// writeWireError reports a binary-ingest failure: a frame whose
// declared batch blows the tick cap (or a body over the byte cap) is a
// 413, retryable by splitting the batch; corruption — bad magic or
// version, checksum mismatch, truncation, non-finite ticks — is a 400.
func writeWireError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var mbe *http.MaxBytesError
	if errors.Is(err, wire.ErrFrameTooLarge) || errors.As(err, &mbe) {
		status = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, status, map[string]string{"error": "frame: " + err.Error()})
}

// offerFrames ingests a body of binary frames into the URL-addressed
// stream (or group, via the offer argument). Each frame decodes into a
// pooled []float64 handed straight to OfferBatch; a frame-embedded id,
// when present, must match the URL. Nothing is echoed per frame — one
// summary response covers the whole body.
func (s *server) offerFrames(w http.ResponseWriter, r *http.Request, offer func(string, []float64) (int, error)) {
	id := r.PathValue("id")
	dec := s.decoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	defer s.decoders.Put(dec)
	accepted, kept, frames := 0, 0, 0
	for {
		start := time.Now()
		frameID, values, err := dec.ReadFrame()
		decodeDur := time.Since(start)
		if err == io.EOF {
			break
		}
		if err != nil {
			writeWireError(w, err)
			return
		}
		if frameID != "" && frameID != id {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("frame names stream %q but the URL names %q", frameID, id)})
			return
		}
		k, err := offer(id, values)
		if err != nil {
			writeError(w, err)
			return
		}
		s.ingestFrames.Inc()
		s.ingestBytes.Add(uint64(dec.FrameBytes()))
		s.observeIngest("binary", decodeDur, dec.FrameBytes(), len(values))
		accepted += len(values)
		kept += k
		frames++
	}
	if frames == 0 {
		// An empty body still names a stream; surface a 404 for a ghost
		// the way an empty text body does.
		if _, err := offer(id, nil); err != nil {
			writeError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, offerResponse{Accepted: accepted, Kept: kept})
}

// sessionResponse is the body of a completed streaming session: what
// the connection's frames added up to.
type sessionResponse struct {
	Frames   int64 `json:"frames"`
	Accepted int64 `json:"accepted"`
	Kept     int64 `json:"kept"`
}

// session is the persistent streaming ingest mode: one long-lived POST
// whose body is an unbounded sequence of binary frames, each routed to
// the stream its embedded id names — connection setup, routing and
// response costs are paid once per session instead of once per batch.
// Frames are offered as they arrive, so observers see the stream grow
// mid-session; the response (totals, or the first error) comes when
// the client closes its body. The body is deliberately not size-capped
// — sessions are long-lived by design — but every frame is still held
// to the frame-declared tick cap, which bounds memory. Sessions are
// not transactional: frames before a mid-session error stay ingested,
// and the error body reports how far the session got.
func (s *server) session(w http.ResponseWriter, r *http.Request) {
	if !isTickBatch(r) {
		writeJSON(w, http.StatusUnsupportedMediaType,
			map[string]string{"error": "session bodies are binary tick-batch frames; set Content-Type " + wire.ContentType})
		return
	}
	dec := s.decoder(r.Body)
	defer s.decoders.Put(dec)
	var resp sessionResponse
	fail := func(status int, msg string) {
		writeJSON(w, status, map[string]any{
			"error": msg, "frames": resp.Frames, "accepted": resp.Accepted, "kept": resp.Kept})
	}
	for {
		start := time.Now()
		id, values, err := dec.ReadFrame()
		decodeDur := time.Since(start)
		if err == io.EOF {
			break
		}
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, wire.ErrFrameTooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			fail(status, "frame: "+err.Error())
			return
		}
		if id == "" {
			fail(http.StatusBadRequest, "session frame carries no stream id")
			return
		}
		kept, err := s.hub.OfferBatch(id, values)
		if err != nil {
			fail(statusFor(err), err.Error())
			return
		}
		s.ingestFrames.Inc()
		s.ingestBytes.Add(uint64(dec.FrameBytes()))
		s.observeIngest("session", decodeDur, dec.FrameBytes(), len(values))
		resp.Frames++
		resp.Accepted += int64(len(values))
		resp.Kept += int64(kept)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) snapshot(w http.ResponseWriter, r *http.Request) {
	sum, err := s.hub.Snapshot(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

// hurst serves the stream's live Hurst block alone — the document a
// self-similarity dashboard polls. A stream created without an
// estimator has no such subresource: 404, same as a missing stream,
// with a message saying which of the two it was.
func (s *server) hurst(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sum, err := s.hub.Snapshot(id)
	if err != nil {
		writeError(w, err)
		return
	}
	if sum.Hurst == nil {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": fmt.Sprintf("stream %q has no estimator (create it with \"estimator\")", id)})
		return
	}
	writeJSON(w, http.StatusOK, sum.Hurst)
}

// sampleJSON is the wire form of one kept sample.
type sampleJSON struct {
	Index     int     `json:"index"`
	Value     float64 `json:"value"`
	Qualified bool    `json:"qualified,omitempty"`
}

// finishResponse is the body of DELETE /v1/streams/{id}: the final
// summary plus the samples only decidable at end of stream.
type finishResponse struct {
	Summary sampling.Summary `json:"summary"`
	Tail    []sampleJSON     `json:"tail"`
}

// finishStream ends a stream. The stream is removed even when the
// engine's finalization fails (e.g. a fixed-size simple random draw
// over a shorter stream): the DELETE itself succeeded, and the summary
// carries the engine error for the client to inspect.
func (s *server) finishStream(w http.ResponseWriter, r *http.Request) {
	tail, sum, err := s.hub.Finish(r.PathValue("id"))
	if err != nil && errors.Is(err, hub.ErrStreamNotFound) {
		writeError(w, err)
		return
	}
	resp := finishResponse{Summary: sum, Tail: make([]sampleJSON, len(tail))}
	for i, smp := range tail {
		resp.Tail[i] = sampleJSON{Index: smp.Index, Value: smp.Value, Qualified: smp.Qualified}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) listStreams(w http.ResponseWriter, r *http.Request) {
	ids := s.hub.List()
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"streams": ids, "count": len(ids)})
}

// createGroupRequest is the body of PUT /v1/groups/{id}: the member
// specs (each in either wire form, string or object) plus the same
// seed/budget/estimator options as a stream create — with "estimator"
// buying the whole group one shared input-side estimator and one
// kept-side estimator per member.
type createGroupRequest struct {
	Specs     []sampling.Spec `json:"specs"`
	Seed      *uint64         `json:"seed,omitempty"`
	Budget    int             `json:"budget,omitempty"`
	Estimator string          `json:"estimator,omitempty"`
}

func (s *server) createGroup(w http.ResponseWriter, r *http.Request) {
	var req createGroupRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, s.maxBody), &req); err != nil {
		writeBodyError(w, err)
		return
	}
	opts, ok := engineOptions(w, req.Seed, req.Budget, req.Estimator)
	if !ok {
		return
	}
	id := r.PathValue("id")
	if err := s.hub.CreateGroup(id, req.Specs, opts...); err != nil {
		writeError(w, err)
		return
	}
	cmp, err := s.hub.GroupSnapshot(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, cmp)
}

// offerGroupTicks ingests one batch into every member of a group; body
// formats as for stream ticks, including binary tick-batch frames.
// "kept" counts samples across all members, so it can exceed
// "accepted".
func (s *server) offerGroupTicks(w http.ResponseWriter, r *http.Request) {
	if isTickBatch(r) {
		s.offerFrames(w, r, s.hub.OfferGroupBatch)
		return
	}
	values, ok := s.readTicks(w, r)
	if !ok {
		return
	}
	kept, err := s.hub.OfferGroupBatch(r.PathValue("id"), values)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, offerResponse{Accepted: len(values), Kept: kept})
}

// groupSnapshot serves the live comparison document: the unsampled
// input reference plus per-technique summaries and fidelity scores.
func (s *server) groupSnapshot(w http.ResponseWriter, r *http.Request) {
	cmp, err := s.hub.GroupSnapshot(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, cmp)
}

// finishGroupResponse is the body of DELETE /v1/groups/{id}: the final
// comparison plus each member's end-of-stream samples, in member order.
type finishGroupResponse struct {
	Comparison sampling.Comparison `json:"comparison"`
	Tails      [][]sampleJSON      `json:"tails"`
}

// finishGroup ends a group. As with streams, member finalization
// failures do not block the DELETE: the group is removed and each
// failing member's summary carries its error.
func (s *server) finishGroup(w http.ResponseWriter, r *http.Request) {
	tails, cmp, err := s.hub.FinishGroup(r.PathValue("id"))
	if err != nil && errors.Is(err, hub.ErrStreamNotFound) {
		writeError(w, err)
		return
	}
	resp := finishGroupResponse{Comparison: cmp, Tails: make([][]sampleJSON, len(tails))}
	for i, tail := range tails {
		resp.Tails[i] = make([]sampleJSON, len(tail))
		for j, smp := range tail {
			resp.Tails[i][j] = sampleJSON{Index: smp.Index, Value: smp.Value, Qualified: smp.Qualified}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) listGroups(w http.ResponseWriter, r *http.Request) {
	ids := s.hub.ListGroups()
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"groups": ids, "count": len(ids)})
}

// hurstAggregate returns the hub's Hurst aggregate, recomputed at most
// once per hurstEvery (staleness up to that period is inherent to the
// gauge; the per-stream /hurst endpoint is always live).
func (s *server) hurstAggregate() hub.HurstStats {
	s.hurstMu.Lock()
	defer s.hurstMu.Unlock()
	if s.hurstAt.IsZero() || s.hurstEvery <= 0 || time.Since(s.hurstAt) >= s.hurstEvery {
		s.hurstStats = s.hub.Hurst()
		s.hurstAt = time.Now()
	}
	return s.hurstStats
}

// metrics renders the whole exposition from the obs registry —
// counters are cumulative and monotonic, so rate() over
// sampled_ticks_total gives live ingest throughput. The registry's
// scrape hook refreshes the hub stats cache first, so every series in
// one scrape reads the same Stats() walk.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WriteText(w)
}
