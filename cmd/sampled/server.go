package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/sampling"
	"repro/sampling/estimate"
	"repro/sampling/hub"
	"repro/sampling/wire"
)

// server is the HTTP face of a hub: the v1 stream resource plus a
// Prometheus-style metrics endpoint.
type server struct {
	hub     *hub.Hub
	maxBody int64

	// The binary wire. maxTicks is the frame-declared batch cap (the
	// body cap divided by the 8 bytes a tick occupies on the wire), so
	// a hostile length prefix is refused before any allocation; the
	// decoders pool keeps frame and tick buffers warm across requests
	// and sessions; the counters feed sampled_ingest_* on /metrics.
	maxTicks     int
	decoders     sync.Pool
	ingestFrames atomic.Int64
	ingestBytes  atomic.Int64

	// The hub's Hurst aggregate costs O(streams) — one engine snapshot
	// and regression per estimating stream — while every other /metrics
	// figure is O(shards). Scrapes therefore reuse a cached aggregate
	// for hurstEvery, so high-frequency scraping cannot stall ingest.
	hurstEvery time.Duration
	hurstMu    sync.Mutex
	hurstAt    time.Time
	hurstStats hub.HurstStats
}

// newServer builds the daemon's handler around an existing hub. maxBody
// caps request bodies in bytes (0 means the default of 32 MiB) — an
// ingest batch bigger than that should be split by the client anyway.
// hurstEvery is the refresh period of the O(streams) sampled_hurst_*
// aggregate on /metrics; 0 recomputes on every scrape.
func newServer(h *hub.Hub, maxBody int64, hurstEvery time.Duration) http.Handler {
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	s := &server{hub: h, maxBody: maxBody, hurstEvery: hurstEvery}
	s.maxTicks = int(maxBody / 8)
	if s.maxTicks < 1 {
		s.maxTicks = 1
	}
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/streams/{id}", s.createStream)
	mux.HandleFunc("POST /v1/session", s.session)
	mux.HandleFunc("POST /v1/streams/{id}/ticks", s.offerTicks)
	mux.HandleFunc("GET /v1/streams/{id}/snapshot", s.snapshot)
	mux.HandleFunc("GET /v1/streams/{id}/hurst", s.hurst)
	mux.HandleFunc("DELETE /v1/streams/{id}", s.finishStream)
	mux.HandleFunc("GET /v1/streams", s.listStreams)
	mux.HandleFunc("PUT /v1/groups/{id}", s.createGroup)
	mux.HandleFunc("POST /v1/groups/{id}/ticks", s.offerGroupTicks)
	mux.HandleFunc("GET /v1/groups/{id}", s.groupSnapshot)
	mux.HandleFunc("DELETE /v1/groups/{id}", s.finishGroup)
	mux.HandleFunc("GET /v1/groups", s.listGroups)
	mux.HandleFunc("GET /metrics", s.metrics)
	return mux
}

// statusFor maps the typed error chain onto an HTTP status: client
// mistakes (bad specs, unknown techniques, rejected parameters) are
// 400s, lifecycle conflicts are 404/409, anything untyped is a 500.
func statusFor(err error) int {
	var pe *sampling.ParamError
	switch {
	case errors.Is(err, hub.ErrStreamNotFound):
		return http.StatusNotFound
	case errors.Is(err, hub.ErrStreamExists):
		return http.StatusConflict
	case errors.Is(err, sampling.ErrUnknownTechnique),
		errors.Is(err, sampling.ErrBadSpec),
		errors.Is(err, sampling.ErrUnknownEstimator),
		errors.Is(err, hub.ErrInvalidID),
		errors.As(err, &pe):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), map[string]string{"error": err.Error()})
}

// writeBodyError reports a request-body failure: 413 when the body blew
// the size cap (retryable by splitting the batch), 400 otherwise.
func writeBodyError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		status = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, status, map[string]string{"error": "body: " + err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// createRequest is the body of PUT /v1/streams/{id}. The spec comes in
// either wire form — the object {"technique": ..., "params": {...}} or
// the spec string "bss:rate=1e-3,L=10" — and seed/budget/estimator map
// onto the engine options of the public API ("estimator" names an
// online Hurst estimation method: aggvar, wavelet or rs).
type createRequest struct {
	Spec      sampling.Spec `json:"spec"`
	Seed      *uint64       `json:"seed,omitempty"`
	Budget    int           `json:"budget,omitempty"`
	Estimator string        `json:"estimator,omitempty"`
}

// decodeStrict decodes exactly one JSON value from r, rejecting unknown
// object fields and trailing input — a concatenated second value means
// the client built the request wrong, and dropping it silently would
// corrupt ingest counts.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// engineOptions maps the shared seed/budget/estimator request fields
// onto engine options, reporting the 400 itself on a bad budget; the
// second return is false when a response has already been written.
func engineOptions(w http.ResponseWriter, seed *uint64, budget int, estimator string) ([]sampling.Option, bool) {
	var opts []sampling.Option
	if seed != nil {
		opts = append(opts, sampling.WithSeed(*seed))
	}
	// 0 is the documented "unlimited" default; anything else below 1 is
	// a client mistake and must not silently create an unbounded stream.
	if budget < 0 {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("budget %d must be >= 0", budget)})
		return nil, false
	}
	if budget > 0 {
		opts = append(opts, sampling.WithBudget(budget))
	}
	if estimator != "" {
		opts = append(opts, sampling.WithEstimator(estimate.Method(estimator)))
	}
	return opts, true
}

func (s *server) createStream(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, s.maxBody), &req); err != nil {
		writeBodyError(w, err)
		return
	}
	opts, ok := engineOptions(w, req.Seed, req.Budget, req.Estimator)
	if !ok {
		return
	}
	id := r.PathValue("id")
	if err := s.hub.Create(id, req.Spec, opts...); err != nil {
		writeError(w, err)
		return
	}
	sum, err := s.hub.Snapshot(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, sum)
}

// offerResponse is the body of a successful tick ingest.
type offerResponse struct {
	Accepted int `json:"accepted"` // ticks offered to the engine
	Kept     int `json:"kept"`     // samples this batch finalized
}

// readTicks parses one ingest batch from the request body. Two body
// formats: a JSON array of numbers (Content-Type application/json) and
// newline- or whitespace-separated decimal floats (anything else) — the
// latter is what `tr` and `awk` pipelines produce. On a malformed body
// readTicks writes the 400/413 itself and returns ok=false.
func (s *server) readTicks(w http.ResponseWriter, r *http.Request) (values []float64, ok bool) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		// Decode through pointers so a null element — which plain
		// []float64 silently turns into a phantom 0.0 tick — is
		// distinguishable and rejected.
		var boxed []*float64
		if err := decodeStrict(body, &boxed); err != nil {
			writeBodyError(w, err)
			return nil, false
		}
		values = make([]float64, len(boxed))
		for i, p := range boxed {
			if p == nil {
				writeJSON(w, http.StatusBadRequest,
					map[string]string{"error": fmt.Sprintf("tick %d: null is not a tick value", i)})
				return nil, false
			}
			values[i] = *p
		}
		return values, true
	}
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": fmt.Sprintf("tick %d: %v", len(values), err)})
			return nil, false
		}
		// ParseFloat accepts NaN/Inf spellings, but one NaN poisons
		// the stream's running moments for the rest of its life.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": fmt.Sprintf("tick %d: non-finite value %v", len(values), v)})
			return nil, false
		}
		values = append(values, v)
	}
	if err := sc.Err(); err != nil {
		writeBodyError(w, err)
		return nil, false
	}
	return values, true
}

// offerTicks ingests one batch into a stream. Ticks within one stream
// must be posted sequentially; batches for different streams are fully
// concurrent. A Content-Type of application/x-tickbatch switches the
// body to binary tick-batch frames (any number, back to back); JSON
// and whitespace text stay as before.
func (s *server) offerTicks(w http.ResponseWriter, r *http.Request) {
	if isTickBatch(r) {
		s.offerFrames(w, r, s.hub.OfferBatch)
		return
	}
	values, ok := s.readTicks(w, r)
	if !ok {
		return
	}
	kept, err := s.hub.OfferBatch(r.PathValue("id"), values)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, offerResponse{Accepted: len(values), Kept: kept})
}

// isTickBatch reports whether the request body is binary tick-batch
// frames.
func isTickBatch(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Content-Type"), wire.ContentType)
}

// decoder takes a pooled frame decoder (warm buffers, shared tick cap)
// for one request body; return it with s.decoders.Put when done.
func (s *server) decoder(r io.Reader) *wire.Decoder {
	if d, ok := s.decoders.Get().(*wire.Decoder); ok {
		d.Reset(r)
		return d
	}
	return wire.NewDecoder(r, s.maxTicks)
}

// writeWireError reports a binary-ingest failure: a frame whose
// declared batch blows the tick cap (or a body over the byte cap) is a
// 413, retryable by splitting the batch; corruption — bad magic or
// version, checksum mismatch, truncation, non-finite ticks — is a 400.
func writeWireError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var mbe *http.MaxBytesError
	if errors.Is(err, wire.ErrFrameTooLarge) || errors.As(err, &mbe) {
		status = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, status, map[string]string{"error": "frame: " + err.Error()})
}

// offerFrames ingests a body of binary frames into the URL-addressed
// stream (or group, via the offer argument). Each frame decodes into a
// pooled []float64 handed straight to OfferBatch; a frame-embedded id,
// when present, must match the URL. Nothing is echoed per frame — one
// summary response covers the whole body.
func (s *server) offerFrames(w http.ResponseWriter, r *http.Request, offer func(string, []float64) (int, error)) {
	id := r.PathValue("id")
	dec := s.decoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	defer s.decoders.Put(dec)
	accepted, kept, frames := 0, 0, 0
	for {
		frameID, values, err := dec.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeWireError(w, err)
			return
		}
		if frameID != "" && frameID != id {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("frame names stream %q but the URL names %q", frameID, id)})
			return
		}
		k, err := offer(id, values)
		if err != nil {
			writeError(w, err)
			return
		}
		s.ingestFrames.Add(1)
		s.ingestBytes.Add(dec.FrameBytes())
		accepted += len(values)
		kept += k
		frames++
	}
	if frames == 0 {
		// An empty body still names a stream; surface a 404 for a ghost
		// the way an empty text body does.
		if _, err := offer(id, nil); err != nil {
			writeError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, offerResponse{Accepted: accepted, Kept: kept})
}

// sessionResponse is the body of a completed streaming session: what
// the connection's frames added up to.
type sessionResponse struct {
	Frames   int64 `json:"frames"`
	Accepted int64 `json:"accepted"`
	Kept     int64 `json:"kept"`
}

// session is the persistent streaming ingest mode: one long-lived POST
// whose body is an unbounded sequence of binary frames, each routed to
// the stream its embedded id names — connection setup, routing and
// response costs are paid once per session instead of once per batch.
// Frames are offered as they arrive, so observers see the stream grow
// mid-session; the response (totals, or the first error) comes when
// the client closes its body. The body is deliberately not size-capped
// — sessions are long-lived by design — but every frame is still held
// to the frame-declared tick cap, which bounds memory. Sessions are
// not transactional: frames before a mid-session error stay ingested,
// and the error body reports how far the session got.
func (s *server) session(w http.ResponseWriter, r *http.Request) {
	if !isTickBatch(r) {
		writeJSON(w, http.StatusUnsupportedMediaType,
			map[string]string{"error": "session bodies are binary tick-batch frames; set Content-Type " + wire.ContentType})
		return
	}
	dec := s.decoder(r.Body)
	defer s.decoders.Put(dec)
	var resp sessionResponse
	fail := func(status int, msg string) {
		writeJSON(w, status, map[string]any{
			"error": msg, "frames": resp.Frames, "accepted": resp.Accepted, "kept": resp.Kept})
	}
	for {
		id, values, err := dec.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, wire.ErrFrameTooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			fail(status, "frame: "+err.Error())
			return
		}
		if id == "" {
			fail(http.StatusBadRequest, "session frame carries no stream id")
			return
		}
		kept, err := s.hub.OfferBatch(id, values)
		if err != nil {
			fail(statusFor(err), err.Error())
			return
		}
		s.ingestFrames.Add(1)
		s.ingestBytes.Add(dec.FrameBytes())
		resp.Frames++
		resp.Accepted += int64(len(values))
		resp.Kept += int64(kept)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) snapshot(w http.ResponseWriter, r *http.Request) {
	sum, err := s.hub.Snapshot(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

// hurst serves the stream's live Hurst block alone — the document a
// self-similarity dashboard polls. A stream created without an
// estimator has no such subresource: 404, same as a missing stream,
// with a message saying which of the two it was.
func (s *server) hurst(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sum, err := s.hub.Snapshot(id)
	if err != nil {
		writeError(w, err)
		return
	}
	if sum.Hurst == nil {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": fmt.Sprintf("stream %q has no estimator (create it with \"estimator\")", id)})
		return
	}
	writeJSON(w, http.StatusOK, sum.Hurst)
}

// sampleJSON is the wire form of one kept sample.
type sampleJSON struct {
	Index     int     `json:"index"`
	Value     float64 `json:"value"`
	Qualified bool    `json:"qualified,omitempty"`
}

// finishResponse is the body of DELETE /v1/streams/{id}: the final
// summary plus the samples only decidable at end of stream.
type finishResponse struct {
	Summary sampling.Summary `json:"summary"`
	Tail    []sampleJSON     `json:"tail"`
}

// finishStream ends a stream. The stream is removed even when the
// engine's finalization fails (e.g. a fixed-size simple random draw
// over a shorter stream): the DELETE itself succeeded, and the summary
// carries the engine error for the client to inspect.
func (s *server) finishStream(w http.ResponseWriter, r *http.Request) {
	tail, sum, err := s.hub.Finish(r.PathValue("id"))
	if err != nil && errors.Is(err, hub.ErrStreamNotFound) {
		writeError(w, err)
		return
	}
	resp := finishResponse{Summary: sum, Tail: make([]sampleJSON, len(tail))}
	for i, smp := range tail {
		resp.Tail[i] = sampleJSON{Index: smp.Index, Value: smp.Value, Qualified: smp.Qualified}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) listStreams(w http.ResponseWriter, r *http.Request) {
	ids := s.hub.List()
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"streams": ids, "count": len(ids)})
}

// createGroupRequest is the body of PUT /v1/groups/{id}: the member
// specs (each in either wire form, string or object) plus the same
// seed/budget/estimator options as a stream create — with "estimator"
// buying the whole group one shared input-side estimator and one
// kept-side estimator per member.
type createGroupRequest struct {
	Specs     []sampling.Spec `json:"specs"`
	Seed      *uint64         `json:"seed,omitempty"`
	Budget    int             `json:"budget,omitempty"`
	Estimator string          `json:"estimator,omitempty"`
}

func (s *server) createGroup(w http.ResponseWriter, r *http.Request) {
	var req createGroupRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, s.maxBody), &req); err != nil {
		writeBodyError(w, err)
		return
	}
	opts, ok := engineOptions(w, req.Seed, req.Budget, req.Estimator)
	if !ok {
		return
	}
	id := r.PathValue("id")
	if err := s.hub.CreateGroup(id, req.Specs, opts...); err != nil {
		writeError(w, err)
		return
	}
	cmp, err := s.hub.GroupSnapshot(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, cmp)
}

// offerGroupTicks ingests one batch into every member of a group; body
// formats as for stream ticks, including binary tick-batch frames.
// "kept" counts samples across all members, so it can exceed
// "accepted".
func (s *server) offerGroupTicks(w http.ResponseWriter, r *http.Request) {
	if isTickBatch(r) {
		s.offerFrames(w, r, s.hub.OfferGroupBatch)
		return
	}
	values, ok := s.readTicks(w, r)
	if !ok {
		return
	}
	kept, err := s.hub.OfferGroupBatch(r.PathValue("id"), values)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, offerResponse{Accepted: len(values), Kept: kept})
}

// groupSnapshot serves the live comparison document: the unsampled
// input reference plus per-technique summaries and fidelity scores.
func (s *server) groupSnapshot(w http.ResponseWriter, r *http.Request) {
	cmp, err := s.hub.GroupSnapshot(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, cmp)
}

// finishGroupResponse is the body of DELETE /v1/groups/{id}: the final
// comparison plus each member's end-of-stream samples, in member order.
type finishGroupResponse struct {
	Comparison sampling.Comparison `json:"comparison"`
	Tails      [][]sampleJSON      `json:"tails"`
}

// finishGroup ends a group. As with streams, member finalization
// failures do not block the DELETE: the group is removed and each
// failing member's summary carries its error.
func (s *server) finishGroup(w http.ResponseWriter, r *http.Request) {
	tails, cmp, err := s.hub.FinishGroup(r.PathValue("id"))
	if err != nil && errors.Is(err, hub.ErrStreamNotFound) {
		writeError(w, err)
		return
	}
	resp := finishGroupResponse{Comparison: cmp, Tails: make([][]sampleJSON, len(tails))}
	for i, tail := range tails {
		resp.Tails[i] = make([]sampleJSON, len(tail))
		for j, smp := range tail {
			resp.Tails[i][j] = sampleJSON{Index: smp.Index, Value: smp.Value, Qualified: smp.Qualified}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) listGroups(w http.ResponseWriter, r *http.Request) {
	ids := s.hub.ListGroups()
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"groups": ids, "count": len(ids)})
}

// hurstAggregate returns the hub's Hurst aggregate, recomputed at most
// once per hurstEvery (staleness up to that period is inherent to the
// gauge; the per-stream /hurst endpoint is always live).
func (s *server) hurstAggregate() hub.HurstStats {
	s.hurstMu.Lock()
	defer s.hurstMu.Unlock()
	if s.hurstAt.IsZero() || s.hurstEvery <= 0 || time.Since(s.hurstAt) >= s.hurstEvery {
		s.hurstStats = s.hub.Hurst()
		s.hurstAt = time.Now()
	}
	return s.hurstStats
}

// metrics renders the hub's aggregate stats in the Prometheus text
// exposition format — counters are cumulative and monotonic, so rate()
// over sampled_ticks_total gives live ingest throughput.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	st := s.hub.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP sampled_streams Live sampling streams.\n# TYPE sampled_streams gauge\nsampled_streams %d\n", st.Streams)
	fmt.Fprintf(w, "# HELP sampled_streams_created_total Streams ever created.\n# TYPE sampled_streams_created_total counter\nsampled_streams_created_total %d\n", st.Created)
	fmt.Fprintf(w, "# HELP sampled_streams_evicted_total Streams evicted after the idle TTL.\n# TYPE sampled_streams_evicted_total counter\nsampled_streams_evicted_total %d\n", st.Evicted)
	fmt.Fprintf(w, "# HELP sampled_ticks_total Ticks ingested across all streams.\n# TYPE sampled_ticks_total counter\nsampled_ticks_total %d\n", st.Ticks)
	fmt.Fprintf(w, "# HELP sampled_samples_kept_total Samples kept across all streams.\n# TYPE sampled_samples_kept_total counter\nsampled_samples_kept_total %d\n", st.Kept)
	fmt.Fprintf(w, "# HELP sampled_groups Live comparison groups.\n# TYPE sampled_groups gauge\nsampled_groups %d\n", st.Groups)
	fmt.Fprintf(w, "# HELP sampled_groups_created_total Comparison groups ever created.\n# TYPE sampled_groups_created_total counter\nsampled_groups_created_total %d\n", st.GroupsCreated)
	fmt.Fprintf(w, "# HELP sampled_groups_evicted_total Comparison groups evicted after the idle TTL.\n# TYPE sampled_groups_evicted_total counter\nsampled_groups_evicted_total %d\n", st.GroupsEvicted)
	fmt.Fprintf(w, "# HELP sampled_group_ticks_total Input ticks ingested by comparison groups (each fans out to every member).\n# TYPE sampled_group_ticks_total counter\nsampled_group_ticks_total %d\n", st.GroupTicks)
	fmt.Fprintf(w, "# HELP sampled_group_samples_kept_total Samples kept across all group members.\n# TYPE sampled_group_samples_kept_total counter\nsampled_group_samples_kept_total %d\n", st.GroupKept)
	fmt.Fprintf(w, "# HELP sampled_ingest_frames_total Binary tick-batch frames decoded (single-shot POSTs and streaming sessions).\n# TYPE sampled_ingest_frames_total counter\nsampled_ingest_frames_total %d\n", s.ingestFrames.Load())
	fmt.Fprintf(w, "# HELP sampled_ingest_bytes_total Bytes of binary tick-batch frames decoded.\n# TYPE sampled_ingest_bytes_total counter\nsampled_ingest_bytes_total %d\n", s.ingestBytes.Load())
	fmt.Fprintf(w, "# HELP sampled_uptime_seconds Seconds since the hub started.\n# TYPE sampled_uptime_seconds gauge\nsampled_uptime_seconds %g\n", st.Uptime.Seconds())
	fmt.Fprintf(w, "# HELP sampled_ticks_per_second_avg Lifetime average ingest rate.\n# TYPE sampled_ticks_per_second_avg gauge\nsampled_ticks_per_second_avg %g\n", st.TicksPerSec)
	hs := s.hurstAggregate()
	fmt.Fprintf(w, "# HELP sampled_hurst_streams_estimating Live streams carrying an online Hurst estimator.\n# TYPE sampled_hurst_streams_estimating gauge\nsampled_hurst_streams_estimating %d\n", hs.Estimating)
	// The means are NaN until a stream resolves; emit them only once
	// they carry a number so scrapes stay clean.
	if hs.InputN > 0 {
		fmt.Fprintf(w, "# HELP sampled_hurst_input_h_mean Mean pre-sampling Hurst estimate over resolved streams.\n# TYPE sampled_hurst_input_h_mean gauge\nsampled_hurst_input_h_mean %g\n", hs.MeanInputH)
	}
	if hs.KeptN > 0 {
		fmt.Fprintf(w, "# HELP sampled_hurst_kept_h_mean Mean post-sampling Hurst estimate over resolved streams.\n# TYPE sampled_hurst_kept_h_mean gauge\nsampled_hurst_kept_h_mean %g\n", hs.MeanKeptH)
	}
	if hs.DriftN > 0 {
		fmt.Fprintf(w, "# HELP sampled_hurst_drift_mean Mean kept-minus-input Hurst drift over resolved streams.\n# TYPE sampled_hurst_drift_mean gauge\nsampled_hurst_drift_mean %g\n", hs.MeanDrift)
	}
}
