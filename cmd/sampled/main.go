// Command sampled is the sampling service: an HTTP daemon multiplexing
// thousands of named traffic streams over live sampling engines via a
// sharded hub. Each stream is created from a sampler spec, ingests
// batched ticks, can be observed non-destructively at any moment, and
// is finalized (or evicted after an idle TTL) when its traffic stops.
//
// The v1 resource model:
//
//	PUT    /v1/streams/{id}           create: {"spec": "bss:rate=1e-3,L=10", "seed": 7, "budget": 0, "estimator": "aggvar"}
//	POST   /v1/streams/{id}/ticks     ingest: JSON array of numbers, whitespace-separated text,
//	                                  or binary tick-batch frames (Content-Type application/x-tickbatch)
//	POST   /v1/session                streaming ingest: one long-lived connection carrying binary
//	                                  frames, each routed to the stream its embedded id names
//	GET    /v1/streams/{id}/snapshot  live summary (non-destructive)
//	GET    /v1/streams/{id}/hurst     live Hurst block: pre- vs post-sampling H (streams created with "estimator")
//	DELETE /v1/streams/{id}           finish: final summary + end-of-stream samples
//	GET    /v1/streams                live stream ids
//	GET    /metrics                   Prometheus text format (rendered by internal/obs)
//	GET    /debug/events              flight recorder: the most recent requests/errors as JSON
//	GET    /debug/pprof/*             runtime profiles (only with -pprof)
//
// The v2 addition, comparison groups, fans one input stream out to
// several techniques so they can be scored side by side on identical
// traffic (group ids are their own namespace, separate from streams):
//
//	PUT    /v1/groups/{id}            create: {"specs": ["systematic:interval=100", "bss:interval=100,L=10,eps=1.0"], "estimator": "aggvar"}
//	POST   /v1/groups/{id}/ticks      ingest one batch into every member (same body formats as stream ticks)
//	GET    /v1/groups/{id}            live comparison: input reference + per-technique summary and fidelity
//	DELETE /v1/groups/{id}            finish: final comparison + per-member end-of-stream samples
//	GET    /v1/groups                 live group ids
//
// The binary wire (sampling/wire) is the line-rate ingest path: frames
// decode straight into pooled []float64 batches with no per-tick
// parsing, and the session mode pays connection and routing costs once
// per connection instead of once per batch. Request bodies are capped
// (-max-body, 413 on overflow); session bodies are unbounded but every
// frame is held to a frame-declared tick cap derived from the same
// flag.
//
// Typed failures map onto statuses: unknown techniques, bad specs and
// rejected parameters are 400s, a missing stream is a 404, a duplicate
// create is a 409, an oversized body or frame a 413. Shutdown is
// graceful: SIGINT/SIGTERM stops accepting and drains in-flight
// requests.
//
// Diagnostics are structured: -log-format {text,json} and -log-level
// pick the slog handler, every request logs route/id/status/duration,
// and -version prints the build (also exported as sampled_build_info).
//
// Example:
//
//	sampled -addr :8080 -ttl 10m &
//	curl -X PUT localhost:8080/v1/streams/link0 -d '{"spec": "systematic:interval=100"}'
//	seq 1 100000 | tr '\n' ' ' | curl -X POST localhost:8080/v1/streams/link0/ticks --data-binary @-
//	curl localhost:8080/v1/streams/link0/snapshot
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/sampling/hub"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "sampled:", err)
		os.Exit(1)
	}
}

// run boots the daemon and blocks until the context is canceled and the
// server has drained. When ready is non-nil it receives the bound
// address once the listener is up — the hook the end-to-end tests use
// to boot on a loopback port.
func run(ctx context.Context, args []string, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("sampled", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		shards     = fs.Int("shards", 64, "hub lock stripes (rounded up to a power of two)")
		ttl        = fs.Duration("ttl", 0, "evict streams idle for longer than this (0 = never)")
		sweep      = fs.Duration("sweep-every", time.Minute, "idle-eviction sweep period (with -ttl)")
		maxBody    = fs.Int64("max-body", 32<<20, "request body cap in bytes")
		drain      = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		hurstEvery = fs.Duration("hurst-metrics-every", 10*time.Second, "refresh period of the O(streams) sampled_hurst_* aggregate on /metrics (0 = every scrape)")
		logFormat  = fs.String("log-format", "text", "log output format: text or json")
		logLevel   = fs.String("log-level", "info", "minimum log level: debug, info, warn or error (request logs are debug; 4xx/5xx are warn/error)")
		pprofOn    = fs.Bool("pprof", false, "serve runtime profiles on /debug/pprof/")
		events     = fs.Int("events", 256, "flight-recorder ring size behind /debug/events")
		version    = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		v, gv := obs.BuildInfo()
		fmt.Printf("sampled %s %s\n", v, gv)
		return nil
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	h := hub.New(hub.WithShards(*shards), hub.WithIdleTTL(*ttl))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String(), "shards", *shards, "ttl", *ttl)
	if ready != nil {
		ready <- ln.Addr()
	}

	if *ttl > 0 {
		go func() {
			t := time.NewTicker(*sweep)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n := h.Sweep(); n > 0 {
						logger.Info("evicted idle streams", "count", n)
					}
				}
			}
		}()
	}

	handler := newServer(h, *maxBody, *hurstEvery,
		withLogger(logger), withPprof(*pprofOn), withEvents(*events))
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down", "drain", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := h.Stats()
	logger.Info("served",
		"ticks", st.Ticks, "streams", st.Created, "ticks_per_sec", st.TicksPerSec,
		"group_ticks", st.GroupTicks, "groups", st.GroupsCreated)
	return nil
}
