// Command sampled is the sampling service: an HTTP daemon multiplexing
// thousands of named traffic streams over live sampling engines via a
// sharded hub. Each stream is created from a sampler spec, ingests
// batched ticks, can be observed non-destructively at any moment, and
// is finalized (or evicted after an idle TTL) when its traffic stops.
//
// The v1 resource model:
//
//	PUT    /v1/streams/{id}           create: {"spec": "bss:rate=1e-3,L=10", "seed": 7, "budget": 0, "estimator": "aggvar"}
//	POST   /v1/streams/{id}/ticks     ingest: JSON array of numbers, whitespace-separated text,
//	                                  or binary tick-batch frames (Content-Type application/x-tickbatch)
//	POST   /v1/session                streaming ingest: one long-lived connection carrying binary
//	                                  frames, each routed to the stream its embedded id names
//	GET    /v1/streams/{id}/snapshot  live summary (non-destructive)
//	GET    /v1/streams/{id}/hurst     live Hurst block: pre- vs post-sampling H (streams created with "estimator")
//	DELETE /v1/streams/{id}           finish: final summary + end-of-stream samples
//	GET    /v1/streams                live stream ids
//	GET    /metrics                   Prometheus text format (rendered by internal/obs)
//	GET    /debug/events              flight recorder: the most recent requests/errors as JSON
//	GET    /debug/pprof/*             runtime profiles (only with -pprof)
//
// The v2 addition, comparison groups, fans one input stream out to
// several techniques so they can be scored side by side on identical
// traffic (group ids are their own namespace, separate from streams):
//
//	PUT    /v1/groups/{id}            create: {"specs": ["systematic:interval=100", "bss:interval=100,L=10,eps=1.0"], "estimator": "aggvar"}
//	POST   /v1/groups/{id}/ticks      ingest one batch into every member (same body formats as stream ticks)
//	GET    /v1/groups/{id}            live comparison: input reference + per-technique summary and fidelity
//	DELETE /v1/groups/{id}            finish: final comparison + per-member end-of-stream samples
//	GET    /v1/groups                 live group ids
//
// The durability surface (v3): every stream and group is exportable as
// an exact engine-state blob, and the daemon can checkpoint and
// restore its entire hub:
//
//	GET    /healthz                   liveness: the process is up (always 200)
//	GET    /readyz                    readiness: 503 until the boot restore completes and again while draining
//	GET    /v1/streams/{id}/state     export the exact engine state (opaque binary, non-destructive)
//	PUT    /v1/streams/{id}/state     install an exported blob as a new stream (handoff receive)
//	DELETE /v1/streams/{id}/state     detach: export the state and remove the stream WITHOUT finalizing it
//	GET/PUT/DELETE /v1/groups/{id}/state   the same resource for comparison groups
//
// With -checkpoint-dir the hub restores itself from <dir>/hub.ckpt on
// boot (readyz is 503 until done), checkpoints every
// -checkpoint-interval off the hot path, checkpoints once more after
// the shutdown drain, and archives each idle stream's final state
// under <dir>/evicted/ as it is swept. A restart therefore resumes
// with byte-identical engine state: restored streams keep producing
// exactly the kept-sample sequence a never-stopped engine would.
//
// With -route "host:port,host:port,..." the daemon is a cluster
// router instead: a stateless consistent-hash proxy over N sampled
// backends (all four ingest wires forward, persistent sessions demux
// per frame onto per-backend sessions), with /healthz-driven member
// ejection and checkpoint-transfer rebalancing when membership
// changes; see router.go.
//
// The binary wire (sampling/wire) is the line-rate ingest path: frames
// decode straight into pooled []float64 batches with no per-tick
// parsing, and the session mode pays connection and routing costs once
// per connection instead of once per batch. Request bodies are capped
// (-max-body, 413 on overflow); session bodies are unbounded but every
// frame is held to a frame-declared tick cap derived from the same
// flag.
//
// Typed failures map onto statuses: unknown techniques, bad specs and
// rejected parameters are 400s, a missing stream is a 404, a duplicate
// create is a 409, an oversized body or frame a 413. Shutdown is
// graceful: SIGINT/SIGTERM stops accepting and drains in-flight
// requests.
//
// Diagnostics are structured: -log-format {text,json} and -log-level
// pick the slog handler, every request logs route/id/status/duration,
// and -version prints the build (also exported as sampled_build_info).
//
// Example:
//
//	sampled -addr :8080 -ttl 10m &
//	curl -X PUT localhost:8080/v1/streams/link0 -d '{"spec": "systematic:interval=100"}'
//	seq 1 100000 | tr '\n' ' ' | curl -X POST localhost:8080/v1/streams/link0/ticks --data-binary @-
//	curl localhost:8080/v1/streams/link0/snapshot
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/sampling/hub"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "sampled:", err)
		os.Exit(1)
	}
}

// run boots the daemon and blocks until the context is canceled and the
// server has drained. When ready is non-nil it receives the bound
// address once the listener is up — the hook the end-to-end tests use
// to boot on a loopback port.
func run(ctx context.Context, args []string, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("sampled", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		shards      = fs.Int("shards", 64, "hub lock stripes (rounded up to a power of two)")
		ttl         = fs.Duration("ttl", 0, "evict streams idle for longer than this (0 = never)")
		sweep       = fs.Duration("sweep-every", time.Minute, "idle-eviction sweep period (with -ttl)")
		maxBody     = fs.Int64("max-body", 32<<20, "request body cap in bytes")
		drain       = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		hurstEvery  = fs.Duration("hurst-metrics-every", 10*time.Second, "refresh period of the O(streams) sampled_hurst_* aggregate on /metrics (0 = every scrape)")
		ckptDir     = fs.String("checkpoint-dir", "", "durable-state directory: restore the hub from it on boot, checkpoint into it periodically and on shutdown (empty = no durability)")
		ckptEvery   = fs.Duration("checkpoint-interval", 30*time.Second, "period between checkpoints (with -checkpoint-dir)")
		route       = fs.String("route", "", "comma-separated backend addresses: serve as a cluster router over them instead of hosting streams locally")
		healthEvery = fs.Duration("health-interval", 2*time.Second, "backend health-probe period (with -route)")
		logFormat   = fs.String("log-format", "text", "log output format: text or json")
		logLevel    = fs.String("log-level", "info", "minimum log level: debug, info, warn or error (request logs are debug; 4xx/5xx are warn/error)")
		pprofOn     = fs.Bool("pprof", false, "serve runtime profiles on /debug/pprof/")
		events      = fs.Int("events", 256, "flight-recorder ring size behind /debug/events")
		version     = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		v, gv := obs.BuildInfo()
		fmt.Printf("sampled %s %s\n", v, gv)
		return nil
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}

	if *route != "" {
		return runRouter(ctx, *addr, *route, *maxBody, *healthEvery, *drain, logger, ready)
	}

	var hubOpts []hub.Option
	hubOpts = append(hubOpts, hub.WithShards(*shards), hub.WithIdleTTL(*ttl))
	var ckpt *checkpointer
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}
	// The hub needs the evict hook at construction, and the
	// checkpointer needs the hub: build the hub with a hook that
	// forwards to the checkpointer assigned just below (Sweep cannot
	// fire before run finishes wiring — the sweep goroutine starts
	// later in this function).
	if *ckptDir != "" {
		hubOpts = append(hubOpts, hub.WithEvictHook(func(ev hub.Eviction) {
			if ckpt != nil {
				ckpt.evictHook(ev)
			}
		}))
	}
	h := hub.New(hubOpts...)
	if *ckptDir != "" {
		ckpt = newCheckpointer(h, *ckptDir, logger)
	}

	// isReady gates /readyz. The listener comes up before the restore
	// so a restarting daemon never bounces connections, but readiness
	// flips on only once every checkpointed stream is live again.
	var isReady atomic.Bool

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String(), "shards", *shards, "ttl", *ttl)

	handler := newServer(h, *maxBody, *hurstEvery,
		withLogger(logger), withPprof(*pprofOn), withEvents(*events), withReady(&isReady))
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	if ckpt != nil {
		if err := ckpt.restore(); err != nil {
			srv.Close()
			return fmt.Errorf("restore: %w", err)
		}
	}
	isReady.Store(true)
	if ready != nil {
		ready <- ln.Addr()
	}

	if ckpt != nil && *ckptEvery > 0 {
		go ckpt.loop(ctx, *ckptEvery)
	}
	if *ttl > 0 {
		go func() {
			t := time.NewTicker(*sweep)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n := h.Sweep(); n > 0 {
						logger.Info("evicted idle streams", "count", n)
					}
				}
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Draining: readiness drops first so probes steer new traffic away,
	// then in-flight requests finish, then — with no writers left — the
	// final checkpoint captures every acknowledged tick.
	isReady.Store(false)
	logger.Info("shutting down", "drain", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if ckpt != nil {
		if err := ckpt.save(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		logger.Info("final checkpoint written", "dir", *ckptDir)
	}
	st := h.Stats()
	logger.Info("served",
		"ticks", st.Ticks, "streams", st.Created, "ticks_per_sec", st.TicksPerSec,
		"group_ticks", st.GroupTicks, "groups", st.GroupsCreated)
	return nil
}

// runRouter boots the daemon in router mode: a stateless consistent-
// hash proxy over the -route backends with health-driven membership
// and checkpoint-transfer rebalancing; see router.go.
func runRouter(ctx context.Context, addr, route string, maxBody int64, healthEvery, drain time.Duration, logger *slog.Logger, ready chan<- net.Addr) error {
	maxTicks := int(maxBody / 8)
	if maxTicks < 1 {
		maxTicks = 1
	}
	rt, err := newRouter(strings.Split(route, ","), maxTicks, logger, nil)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Info("routing", "addr", ln.Addr().String(), "backends", len(rt.backends))

	srv := &http.Server{Handler: rt.handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// One synchronous probe round before announcing readiness, so the
	// first request already sees real membership, then the steady
	// polling loop.
	rt.checkHealth(ctx)
	if ready != nil {
		ready <- ln.Addr()
	}
	if healthEvery > 0 {
		go rt.healthLoop(ctx, healthEvery)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("router shutting down", "drain", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
