package main

// Router mode: `sampled -route "addr1,addr2,..."` turns the daemon
// into a thin stateless proxy over N sampled backends. Stream and
// group ids place onto backends by consistent hash (sampling/cluster),
// so every router instance with the same backend list agrees on
// ownership without coordination; requests forward to the owner over
// a per-backend reverse proxy, and the persistent-session wire demuxes
// per frame onto per-backend upstream sessions.
//
// Membership is driven by health: a probe loop polls every backend's
// /healthz, and when the healthy set changes the router rebuilds its
// ring and rebalances — every live stream whose owner under the new
// ring differs from the backend currently holding it moves by
// checkpoint transfer (DELETE state from the holder, PUT to the
// owner), so a backend rejoining after a restart picks its share of
// streams back up with their counters intact.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/sampling/cluster"
	"repro/sampling/wire"
)

// router is the proxy's handler state.
type router struct {
	backends []string // full configured set, normalized base URLs
	proxies  map[string]*httputil.ReverseProxy
	client   cluster.StateClient
	logger   *slog.Logger
	maxTicks int

	// ring holds the current placement over the healthy subset; healthy
	// is the probe loop's latest verdict per backend. Both are read on
	// the request path, so they are atomics, not mutexes.
	ring    atomic.Pointer[cluster.Ring]
	healthy sync.Map // base URL -> bool

	// rebalanceMu serializes rebalances; the probe loop is the only
	// steady-state caller, but tests trigger checkHealth directly.
	rebalanceMu sync.Mutex

	reg         *obs.Registry
	backendsUp  *obs.Gauge
	requests    *obs.CounterVec
	handoffs    *obs.Counter
	handoffErrs *obs.Counter
}

// newRouter builds the proxy over the configured backend list. Every
// backend address becomes a base URL (scheme defaulting to http://).
func newRouter(backends []string, maxTicks int, logger *slog.Logger, client *http.Client) (*router, error) {
	rt := &router{
		proxies:  make(map[string]*httputil.ReverseProxy, len(backends)),
		client:   cluster.StateClient{Client: client},
		logger:   logger,
		maxTicks: maxTicks,
	}
	for _, b := range backends {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if !strings.Contains(b, "://") {
			b = "http://" + b
		}
		u, err := url.Parse(b)
		if err != nil {
			return nil, fmt.Errorf("router: backend %q: %w", b, err)
		}
		base := u.Scheme + "://" + u.Host
		rt.backends = append(rt.backends, base)
		p := httputil.NewSingleHostReverseProxy(u)
		if client != nil {
			p.Transport = client.Transport
		}
		p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			writeJSON(w, http.StatusBadGateway, map[string]string{"error": "backend: " + err.Error()})
		}
		rt.proxies[base] = p
	}
	if len(rt.backends) == 0 {
		return nil, errors.New("router: -route names no backends")
	}
	// Boot optimistically: every backend is assumed healthy until the
	// first probe round says otherwise, so a router never drops early
	// traffic just because its first poll has not fired yet.
	for _, b := range rt.backends {
		rt.healthy.Store(b, true)
	}
	rt.ring.Store(cluster.NewRing(rt.backends, 0))

	rt.reg = obs.NewRegistry()
	rt.backendsUp = rt.reg.NewGauge("sampled_router_backends_up", "Backends currently passing health probes.")
	rt.backendsUp.Set(float64(len(rt.backends)))
	rt.requests = rt.reg.NewCounterVec("sampled_router_requests_total", "Requests forwarded, by backend.", "backend")
	rt.handoffs = rt.reg.NewCounter("sampled_router_handoffs_total", "Streams and groups moved between backends by checkpoint transfer.")
	rt.handoffErrs = rt.reg.NewCounter("sampled_router_handoff_errors_total", "Failed stream/group handoffs.")
	version, goVersion := obs.BuildInfo()
	rt.reg.NewGaugeVec("sampled_build_info", "Build metadata; the value is always 1.",
		"version", "go_version").With(version, goVersion).Set(1)
	obs.RegisterRuntime(rt.reg, "sampled")
	return rt, nil
}

// handler builds the router's mux: id-addressed v1 routes forward to
// the owner, collection routes fan out and merge, the session wire
// demuxes per frame, and the router serves its own health and metrics.
func (rt *router) handler() http.Handler {
	mux := http.NewServeMux()
	byID := func(w http.ResponseWriter, r *http.Request) { rt.forward(w, r, r.PathValue("id")) }
	for _, pattern := range []string{
		"PUT /v1/streams/{id}",
		"POST /v1/streams/{id}/ticks",
		"GET /v1/streams/{id}/snapshot",
		"GET /v1/streams/{id}/hurst",
		"GET /v1/streams/{id}/state",
		"PUT /v1/streams/{id}/state",
		"DELETE /v1/streams/{id}/state",
		"DELETE /v1/streams/{id}",
		"PUT /v1/groups/{id}",
		"POST /v1/groups/{id}/ticks",
		"GET /v1/groups/{id}/state",
		"PUT /v1/groups/{id}/state",
		"DELETE /v1/groups/{id}/state",
		"GET /v1/groups/{id}",
		"DELETE /v1/groups/{id}",
	} {
		mux.HandleFunc(pattern, byID)
	}
	mux.HandleFunc("GET /v1/streams", func(w http.ResponseWriter, r *http.Request) {
		rt.mergeLists(w, r, "streams")
	})
	mux.HandleFunc("GET /v1/groups", func(w http.ResponseWriter, r *http.Request) {
		rt.mergeLists(w, r, "groups")
	})
	mux.HandleFunc("POST /v1/session", rt.session)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if rt.ring.Load().Len() == 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no healthy backends"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		rt.reg.WriteText(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such route"})
	})
	return mux
}

// forward proxies one id-addressed request to the id's owner under the
// current ring.
func (rt *router) forward(w http.ResponseWriter, r *http.Request, id string) {
	owner := rt.ring.Load().Lookup(id)
	if owner == "" {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no healthy backends"})
		return
	}
	rt.requests.With(owner).Inc()
	rt.proxies[owner].ServeHTTP(w, r)
}

// mergeLists fans a collection GET out to every healthy backend and
// merges the id lists. A backend that fails mid-fan-out degrades the
// answer, so it is a 502 rather than a silently short list.
func (rt *router) mergeLists(w http.ResponseWriter, r *http.Request, key string) {
	var ids []string
	for _, b := range rt.ring.Load().Members() {
		var part []string
		var err error
		if key == "streams" {
			part, err = rt.client.ListStreams(r.Context(), b)
		} else {
			part, err = rt.client.ListGroups(r.Context(), b)
		}
		if err != nil {
			writeJSON(w, http.StatusBadGateway, map[string]string{"error": "backend " + b + ": " + err.Error()})
			return
		}
		ids = append(ids, part...)
	}
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{key: ids, "count": len(ids)})
}

// upstreamSession is one lazily opened persistent session to a
// backend: frames re-encode into the pipe, and the backend's response
// is collected when the client session ends.
type upstreamSession struct {
	pw   *io.PipeWriter
	enc  *wire.Encoder
	done chan error
	resp sessionResponse
}

// session demuxes a persistent client session onto per-backend
// upstream sessions: each frame routes to its embedded id's owner,
// re-encoded onto that backend's long-lived connection, so the
// session wire keeps its pay-once property end to end. The merged
// totals (or the first error) answer when the client closes its body.
func (rt *router) session(w http.ResponseWriter, r *http.Request) {
	if !isTickBatch(r) {
		writeJSON(w, http.StatusUnsupportedMediaType,
			map[string]string{"error": "session bodies are binary tick-batch frames; set Content-Type " + wire.ContentType})
		return
	}
	dec := wire.NewDecoder(r.Body, rt.maxTicks)
	upstreams := make(map[string]*upstreamSession)
	var total sessionResponse

	// closeAll tears down every upstream pipe and collects responses;
	// on the error path the pipes are broken instead so backends see a
	// truncated body, not a clean end of session.
	closeAll := func(breakWith error) {
		for _, up := range upstreams {
			if breakWith != nil {
				up.pw.CloseWithError(breakWith)
			} else {
				up.pw.Close()
			}
			<-up.done
		}
	}

	fail := func(status int, msg string) {
		closeAll(errors.New(msg))
		writeJSON(w, status, map[string]any{
			"error": msg, "frames": total.Frames, "accepted": total.Accepted, "kept": total.Kept})
	}

	for {
		id, values, err := dec.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, wire.ErrFrameTooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			fail(status, "frame: "+err.Error())
			return
		}
		if id == "" {
			fail(http.StatusBadRequest, "session frame carries no stream id")
			return
		}
		owner := rt.ring.Load().Lookup(id)
		if owner == "" {
			fail(http.StatusServiceUnavailable, "no healthy backends")
			return
		}
		up, ok := upstreams[owner]
		if !ok {
			var err error
			if up, err = rt.openUpstream(r.Context(), owner); err != nil {
				fail(http.StatusBadGateway, "backend "+owner+": "+err.Error())
				return
			}
			upstreams[owner] = up
			rt.requests.With(owner).Inc()
		}
		if err := up.enc.Encode(id, values); err != nil {
			fail(http.StatusBadGateway, "backend "+owner+": "+err.Error())
			return
		}
		total.Frames++
		total.Accepted += int64(len(values))
	}

	// Clean end of client session: close every upstream body and merge
	// the backends' kept totals into the response.
	var firstErr error
	for owner, up := range upstreams {
		up.pw.Close()
		if err := <-up.done; err != nil && firstErr == nil {
			firstErr = fmt.Errorf("backend %s: %w", owner, err)
		}
		total.Kept += up.resp.Kept
	}
	if firstErr != nil {
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error": firstErr.Error(), "frames": total.Frames, "accepted": total.Accepted, "kept": total.Kept})
		return
	}
	writeJSON(w, http.StatusOK, total)
}

// openUpstream starts one persistent session POST to a backend, its
// body fed by a pipe the demux writes frames into.
func (rt *router) openUpstream(ctx context.Context, base string) (*upstreamSession, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/session", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", wire.ContentType)
	up := &upstreamSession{pw: pw, enc: wire.NewEncoder(pw), done: make(chan error, 1)}
	httpClient := rt.client.Client
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	go func() {
		resp, err := httpClient.Do(req)
		if err != nil {
			pr.CloseWithError(err)
			up.done <- err
			return
		}
		defer resp.Body.Close()
		var sr sessionResponse
		if derr := decodeStrict(io.LimitReader(resp.Body, 1<<20), &sr); derr == nil {
			up.resp = sr
		}
		if resp.StatusCode != http.StatusOK {
			up.done <- fmt.Errorf("session status %d", resp.StatusCode)
			return
		}
		up.done <- nil
	}()
	return up, nil
}

// healthLoop polls every backend until the context ends, rebalancing
// when the healthy set changes.
func (rt *router) healthLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.checkHealth(ctx)
		}
	}
}

// checkHealth probes every configured backend, swaps in a new ring
// when membership changed, and rebalances: every stream and group
// held by a healthy backend that is not its owner under the current
// ring moves to its owner by checkpoint transfer. Convergence is by
// observed placement, not ring history, so a router restarted
// mid-rebalance finishes the job on its first probe round.
func (rt *router) checkHealth(ctx context.Context) {
	rt.rebalanceMu.Lock()
	defer rt.rebalanceMu.Unlock()

	var healthy []string
	for _, b := range rt.backends {
		ok := rt.client.Healthy(ctx, b)
		prev, _ := rt.healthy.Load(b)
		if prev != ok {
			rt.logger.Info("backend health changed", "backend", b, "healthy", ok)
		}
		rt.healthy.Store(b, ok)
		if ok {
			healthy = append(healthy, b)
		}
	}
	rt.backendsUp.Set(float64(len(healthy)))

	old := rt.ring.Load()
	changed := len(healthy) != old.Len()
	for _, b := range healthy {
		if !old.Has(b) {
			changed = true
		}
	}
	if !changed {
		return
	}
	cur := cluster.NewRing(healthy, 0)
	rt.ring.Store(cur)
	rt.logger.Info("ring rebuilt", "backends", len(healthy))
	if cur.Len() == 0 {
		return
	}
	rt.rebalance(ctx, cur)
}

// rebalance walks every healthy backend's live streams and groups and
// transfers each one its ring owner does not hold. Failures are
// logged and counted but do not stop the walk — the next membership
// change (or a converged retry) picks up stragglers.
func (rt *router) rebalance(ctx context.Context, ring *cluster.Ring) {
	for _, holder := range ring.Members() {
		ids, err := rt.client.ListStreams(ctx, holder)
		if err != nil {
			rt.logger.Error("rebalance: listing streams failed", "backend", holder, "err", err)
			continue
		}
		for _, id := range ids {
			owner := ring.Lookup(id)
			if owner == holder {
				continue
			}
			if err := rt.client.TransferStream(ctx, holder, owner, id); err != nil {
				rt.handoffErrs.Inc()
				rt.logger.Error("stream handoff failed", "id", id, "from", holder, "to", owner, "err", err)
				continue
			}
			rt.handoffs.Inc()
			rt.logger.Info("stream handed off", "id", id, "from", holder, "to", owner)
		}
		gids, err := rt.client.ListGroups(ctx, holder)
		if err != nil {
			rt.logger.Error("rebalance: listing groups failed", "backend", holder, "err", err)
			continue
		}
		for _, id := range gids {
			owner := ring.Lookup(id)
			if owner == holder {
				continue
			}
			if err := rt.client.TransferGroup(ctx, holder, owner, id); err != nil {
				rt.handoffErrs.Inc()
				rt.logger.Error("group handoff failed", "id", id, "from", holder, "to", owner, "err", err)
				continue
			}
			rt.handoffs.Inc()
			rt.logger.Info("group handed off", "id", id, "from", holder, "to", owner)
		}
	}
}
