package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/sampling/hub"
)

func getBody(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// TestObservabilitySurface drives a few requests through every wire
// the duration/ingest histograms watch and asserts the registry-
// rendered exposition carries the new families alongside every
// pre-existing series.
func TestObservabilitySurface(t *testing.T) {
	srv := httptest.NewServer(newServer(hub.New(), 0, 0))
	defer srv.Close()
	client := srv.Client()

	if code, body := doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/s1",
		map[string]any{"spec": "systematic:interval=10", "estimator": "aggvar"}); code != http.StatusCreated {
		t.Fatalf("PUT: %d %s", code, body)
	}
	if code, body := doJSON(t, client, http.MethodPost, srv.URL+"/v1/streams/s1/ticks",
		[]float64{1, 2, 3, 4, 5}); code != http.StatusOK {
		t.Fatalf("POST ticks: %d %s", code, body)
	}
	// Text wire.
	resp, err := client.Post(srv.URL+"/v1/streams/s1/ticks", "text/plain", strings.NewReader("6 7 8"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text POST: %d", resp.StatusCode)
	}
	// A miss for the route="other" catch-all.
	if code, _ := getBody(t, client, srv.URL+"/no/such/route"); code != http.StatusNotFound {
		t.Fatalf("bogus route: %d, want 404", code)
	}

	_, metrics := getBody(t, client, srv.URL+"/metrics")

	for _, want := range []string{
		// Pre-obs series survive byte for byte.
		"sampled_streams 1\n",
		"sampled_ticks_total 8\n",
		"sampled_hurst_streams_estimating 1\n",
		// The flapping fix: unresolved means render as NaN instead of
		// vanishing from the exposition.
		"sampled_hurst_input_h_mean NaN\n",
		"sampled_hurst_kept_h_mean NaN\n",
		"sampled_hurst_drift_mean NaN\n",
		// New request-level families, with the static pattern as route.
		`sampled_http_request_duration_seconds_bucket{route="POST /v1/streams/{id}/ticks",le="+Inf"} 2`,
		`sampled_http_request_duration_seconds_bucket{route="PUT /v1/streams/{id}",le="+Inf"} 1`,
		`sampled_http_requests_total{route="POST /v1/streams/{id}/ticks",class="2xx"} 2`,
		`sampled_http_requests_total{route="other",class="4xx"} 1`,
		`sampled_http_request_bytes_count{route="POST /v1/streams/{id}/ticks"} 2`,
		// Per-wire ingest decode histograms.
		`sampled_ingest_decode_seconds_count{wire="json"} 1`,
		`sampled_ingest_decode_seconds_count{wire="text"} 1`,
		`sampled_ingest_batch_ticks_count{wire="json"} 1`,
		`sampled_ingest_frame_bytes_count{wire="text"} 1`,
		// Build info and runtime health.
		`sampled_build_info{version="`,
		"sampled_goroutines ",
		"sampled_heap_objects_bytes ",
		"sampled_gc_pause_seconds_total ",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics lacks %q", want)
		}
	}
	// The whole exposition is registry-rendered: HELP precedes every
	// family exactly once.
	if strings.Count(metrics, "# HELP sampled_streams ") != 1 {
		t.Errorf("sampled_streams HELP emitted %d times", strings.Count(metrics, "# HELP sampled_streams "))
	}
}

// TestDebugEvents exercises the flight recorder endpoint: requests
// appear newest first, an error request carries its status and the
// response body as detail.
func TestDebugEvents(t *testing.T) {
	srv := httptest.NewServer(newServer(hub.New(), 0, 0))
	defer srv.Close()
	client := srv.Client()

	if code, body := doJSON(t, client, http.MethodPut, srv.URL+"/v1/streams/ok",
		map[string]any{"spec": "systematic:interval=10"}); code != http.StatusCreated {
		t.Fatalf("PUT: %d %s", code, body)
	}
	if code, _ := getBody(t, client, srv.URL+"/v1/streams/ghost/snapshot"); code != http.StatusNotFound {
		t.Fatalf("ghost snapshot: %d, want 404", code)
	}

	code, body := getBody(t, client, srv.URL+"/debug/events")
	if code != http.StatusOK {
		t.Fatalf("/debug/events: %d", code)
	}
	var doc struct {
		Total    uint64      `json:"total"`
		Capacity int         `json:"capacity"`
		Events   []obs.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if doc.Total != 2 || len(doc.Events) != 2 {
		t.Fatalf("total=%d events=%d, want 2/2", doc.Total, len(doc.Events))
	}
	// Newest first: the failed snapshot, then the create.
	e := doc.Events[0]
	if e.Kind != "error" || e.Status != http.StatusNotFound || e.ID != "ghost" ||
		e.Route != "GET /v1/streams/{id}/snapshot" || !strings.Contains(e.Detail, "stream not found") {
		t.Fatalf("newest event = %+v", e)
	}
	if e := doc.Events[1]; e.Kind != "request" || e.Status != http.StatusCreated || e.ID != "ok" {
		t.Fatalf("older event = %+v", e)
	}
}

// TestPprofOptIn holds /debug/pprof to the -pprof flag: absent by
// default, live when enabled.
func TestPprofOptIn(t *testing.T) {
	off := httptest.NewServer(newServer(hub.New(), 0, 0))
	defer off.Close()
	if code, _ := getBody(t, off.Client(), off.URL+"/debug/pprof/cmdline"); code != http.StatusNotFound {
		t.Fatalf("pprof without -pprof: %d, want 404", code)
	}

	on := httptest.NewServer(newServer(hub.New(), 0, 0, withPprof(true)))
	defer on.Close()
	if code, _ := getBody(t, on.Client(), on.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof with -pprof: %d, want 200", code)
	}
}

// TestVersionFlag pins the -version fast path: print and exit clean,
// no listener.
func TestVersionFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-version"}, nil); err != nil {
		t.Fatalf("-version: %v", err)
	}
}
