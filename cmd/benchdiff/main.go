// Command benchdiff is the benchmark-regression gate: it parses Go
// benchmark output — plain `go test -bench` text or the `go test -json`
// event stream — and compares the ns/op of every benchmark named in a
// committed baseline, failing (exit 1) when any of them regresses by
// more than the threshold.
//
// Repeated results for one benchmark (from -count=N or sub-benchmark
// GOMAXPROCS variants) collapse to their minimum: the best observed run
// is the least noisy estimate of the code's true cost, which makes the
// gate resistant to scheduler hiccups without hiding real regressions.
// The trailing -N GOMAXPROCS suffix is stripped, so baselines recorded
// on one core count compare against runs on another.
//
// Usage:
//
//	go test -run='^$' -bench=BenchmarkHubOfferParallel -count=3 ./sampling/hub | tee bench.txt
//	benchdiff -baseline bench_baseline.json -bench bench.txt
//	benchdiff -baseline bench_baseline.json -bench bench.txt -write   # refresh the baseline
//
// Baselines are machine-specific absolute timings: refresh with -write
// when the benchmark hardware changes, and keep the threshold generous
// enough (the default 0.20 = 20%) to absorb run-to-run jitter.
//
// -list closes the gate's other hole: a baseline entry naming a
// benchmark that no longer exists anywhere in the repo. The bench input
// only proves what ran, so CI feeds the output of
//
//	go test -run='^$' -list '^Benchmark' ./...
//
// through -list, and benchdiff fails when a guarded name's top-level
// benchmark (the part before any '/') is not declared — a renamed or
// deleted benchmark then fails the gate explicitly instead of silently
// dropping out of the guarded set the next time the baseline is
// rewritten.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// baseline is the committed gate file: the benchmarks under guard and
// the regression threshold they are held to.
type baseline struct {
	Note       string                `json:"note,omitempty"`
	Threshold  float64               `json:"threshold"`
	Benchmarks map[string]*benchSpec `json:"benchmarks"`
}

type benchSpec struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// testEvent is the subset of the `go test -json` event stream benchdiff
// cares about: the output lines, which carry the benchmark results, and
// the package they belong to, which keys the name/timing re-pairing.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// The three line shapes benchmark output arrives in. Plain `go test
// -bench` prints one line per result ("BenchmarkX-8  1000  12 ns/op");
// under -json (which implies -v) the runner prints the bare benchmark
// name on its own line/event and the timing columns on the next, so
// the two must be re-paired.
var (
	resultLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op`)
	bareName   = regexp.MustCompile(`^(Benchmark[^\s]+?)(-\d+)?$`)
	resultTail = regexp.MustCompile(`^\d+\s+([0-9.eE+]+) ns/op`)
)

// parseBench extracts best-of ns/op per benchmark name from r, which
// may be plain `go test -bench` output or a `go test -json` stream
// (events from concurrently tested packages may interleave; names are
// paired with timings per package). The trailing -N GOMAXPROCS suffix
// is stripped only when that is unambiguous: if two distinct raw names
// collapse to the same stripped name (e.g. parameterized sub-benchmarks
// BenchmarkX/size-1024 vs -4096), the raw names are kept so the gate
// never conflates different benchmarks.
func parseBench(r io.Reader) (map[string]float64, error) {
	type raw struct {
		full, stripped string
		ns             float64
	}
	var results []raw
	record := func(name, suffix, nsText, line string) error {
		ns, err := strconv.ParseFloat(nsText, 64)
		if err != nil {
			return fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		results = append(results, raw{full: name + suffix, stripped: name, ns: ns})
		return nil
	}
	pending := make(map[string]string) // package -> last bare benchmark name line
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line, pkg := sc.Text(), ""
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				return nil, fmt.Errorf("bad -json event %q: %w", line, err)
			}
			if ev.Action != "output" {
				continue
			}
			line, pkg = strings.TrimSuffix(ev.Output, "\n"), ev.Package
		}
		line = strings.TrimSpace(line)
		switch {
		case resultLine.MatchString(line):
			m := resultLine.FindStringSubmatch(line)
			if err := record(m[1], m[2], m[3], line); err != nil {
				return nil, err
			}
		case bareName.MatchString(line):
			pending[pkg] = line
		case resultTail.MatchString(line) && pending[pkg] != "":
			m := bareName.FindStringSubmatch(pending[pkg])
			t := resultTail.FindStringSubmatch(line)
			if err := record(m[1], m[2], t[1], line); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Resolve suffix ambiguity. A bare name plus one suffixed variant is
	// the -cpu=1,N shape of a single benchmark and merges under the
	// stripped name; two distinct non-empty suffixes mean genuinely
	// different benchmarks (BenchmarkX/size-1024 vs -4096), which keep
	// their raw names so the gate never conflates them.
	suffixes := make(map[string]string) // stripped -> sole non-empty suffix, or "*" when >= 2
	for _, r := range results {
		suffix := strings.TrimPrefix(r.full, r.stripped)
		if suffix == "" {
			continue
		}
		if prev, seen := suffixes[r.stripped]; seen && prev != suffix {
			suffixes[r.stripped] = "*"
		} else if !seen {
			suffixes[r.stripped] = suffix
		}
	}
	out := make(map[string]float64)
	for _, r := range results {
		name := r.stripped
		if suffixes[r.stripped] == "*" {
			name = r.full
		}
		if best, seen := out[name]; !seen || r.ns < best {
			out[name] = r.ns
		}
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		basePath  = fs.String("baseline", "bench_baseline.json", "committed baseline file")
		benchPath = fs.String("bench", "-", "benchmark output to check (text or -json; - = stdin)")
		listPath  = fs.String("list", "", "`go test -list '^Benchmark' ./...` output; every baseline entry's top-level benchmark must be declared in it")
		threshold = fs.Float64("threshold", 0, "regression threshold as a fraction (0 = the baseline's, or 0.20)")
		write     = fs.Bool("write", false, "rewrite the baseline's ns/op from the bench input instead of gating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in io.Reader = os.Stdin
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results in %s", *benchPath)
	}

	data, err := os.ReadFile(*basePath)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", *basePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("baseline %s guards no benchmarks", *basePath)
	}
	if *listPath != "" {
		f, err := os.Open(*listPath)
		if err != nil {
			return err
		}
		declared, err := parseList(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := checkDeclared(&base, declared); err != nil {
			return err
		}
	}

	if *write {
		return rewrite(*basePath, &base, results, out)
	}

	tol := *threshold
	if tol == 0 {
		tol = base.Threshold
	}
	if tol <= 0 {
		tol = 0.20
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		old := base.Benchmarks[name].NsPerOp
		got, ok := results[name]
		if !ok {
			// A benchmark that vanished is a gate hole, not a pass.
			failures = append(failures, fmt.Sprintf("%s: missing from bench output", name))
			fmt.Fprintf(out, "MISSING %-50s baseline %12.1f ns/op\n", name, old)
			continue
		}
		delta := got/old - 1
		verdict := "ok"
		if delta > tol {
			verdict = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %.1f -> %.1f ns/op (%+.1f%%, limit %+.0f%%)",
				name, old, got, 100*delta, 100*tol))
		}
		fmt.Fprintf(out, "%-7s %-50s %12.1f -> %12.1f ns/op (%+6.1f%%)\n", verdict, name, old, got, 100*delta)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d hot-path benchmark(s) regressed beyond %.0f%%:\n  %s",
			len(failures), 100*tol, strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(out, "gate clean: %d benchmarks within %.0f%% of baseline\n", len(names), 100*tol)
	return nil
}

// listName matches one declared benchmark name in `go test -list`
// output, which interleaves names with "ok  <pkg>  <time>" lines.
var listName = regexp.MustCompile(`^Benchmark\S*$`)

// parseList extracts the declared top-level benchmark names from a
// `go test -run='^$' -list '^Benchmark' ./...` stream.
func parseList(r io.Reader) (map[string]bool, error) {
	declared := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); listName.MatchString(line) {
			declared[line] = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(declared) == 0 {
		return nil, fmt.Errorf("-list input declares no benchmarks")
	}
	return declared, nil
}

// checkDeclared fails when any baseline entry names a benchmark whose
// top-level declaration (the name before any sub-benchmark '/') is
// gone from the repo — the entry would otherwise sit in the gate
// guarding nothing the next time someone renames a benchmark and
// refreshes the baseline.
func checkDeclared(base *baseline, declared map[string]bool) error {
	var gone []string
	for name := range base.Benchmarks {
		top, _, _ := strings.Cut(name, "/")
		if !declared[top] {
			gone = append(gone, name)
		}
	}
	if len(gone) > 0 {
		sort.Strings(gone)
		return fmt.Errorf("%d baseline entr(ies) name benchmarks that no longer exist:\n  %s",
			len(gone), strings.Join(gone, "\n  "))
	}
	return nil
}

// rewrite refreshes the guarded benchmarks' ns/op in place, keeping the
// guard set and threshold; every guarded benchmark must be present in
// the input so a partial run cannot silently erode the baseline.
func rewrite(path string, base *baseline, results map[string]float64, out io.Writer) error {
	for name := range base.Benchmarks {
		got, ok := results[name]
		if !ok {
			return fmt.Errorf("cannot rewrite: %s missing from bench output", name)
		}
		base.Benchmarks[name].NsPerOp = got
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "baseline %s rewritten with %d benchmarks\n", path, len(base.Benchmarks))
	return nil
}
