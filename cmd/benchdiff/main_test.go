package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleText = `goos: linux
goarch: amd64
pkg: repro/sampling/hub
cpu: whatever
BenchmarkHubOfferParallel-8   	  230214	      5210 ns/op	       0 B/op	       0 allocs/op	  98255372 ticks/s
BenchmarkHubOfferParallel-8   	  231000	      5100 ns/op	       0 B/op	       0 allocs/op	  99000000 ticks/s
BenchmarkPublicEngineStream/Systematic-8     	     100	  11840000 ns/op
PASS
`

func TestParseBenchTextTakesMinimum(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkHubOfferParallel"] != 5100 {
		t.Errorf("HubOfferParallel = %g, want min 5100", got["BenchmarkHubOfferParallel"])
	}
	if got["BenchmarkPublicEngineStream/Systematic"] != 11840000 {
		t.Errorf("sub-benchmark = %g, want 1.184e7", got["BenchmarkPublicEngineStream/Systematic"])
	}
}

// TestParseBenchJSONEvents uses the real test2json shape: under -json
// the benchmark name and its timing columns arrive as separate output
// events, interleaved across packages, and must be re-paired per
// package.
func TestParseBenchJSONEvents(t *testing.T) {
	lines := []string{
		`{"Action":"run","Package":"repro/sampling/hub","Test":"BenchmarkHubOfferParallel"}`,
		`{"Action":"output","Package":"repro/sampling/hub","Output":"BenchmarkHubOfferParallel\n"}`,
		`{"Action":"output","Package":"repro/other","Output":"BenchmarkOther-8\n"}`,
		`{"Action":"output","Package":"repro/sampling/hub","Output":"   19390\t     12391 ns/op\t  41320155 ticks/s\t       0 B/op\n"}`,
		`{"Action":"output","Package":"repro/other","Output":"     100\t      77.5 ns/op\n"}`,
		`{"Action":"output","Package":"repro/sampling/hub","Output":"PASS\n"}`,
		// A combined single-line result (GOMAXPROCS suffix) still parses.
		`{"Action":"output","Package":"repro/sampling/hub","Output":"BenchmarkHubOfferParallel-4   \t 1000\t 6000 ns/op\n"}`,
	}
	got, err := parseBench(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkHubOfferParallel"] != 6000 {
		t.Errorf("HubOfferParallel = %v, want min 6000", got["BenchmarkHubOfferParallel"])
	}
	if got["BenchmarkOther"] != 77.5 {
		t.Errorf("Other = %v, want 77.5", got["BenchmarkOther"])
	}
}

// Distinct sub-benchmarks whose names end in -<digits> must not be
// conflated by the GOMAXPROCS-suffix strip: with more than one raw
// variant the raw names are kept.
func TestParseBenchKeepsAmbiguousSuffixes(t *testing.T) {
	text := "BenchmarkX/size-1024   \t 100\t 50 ns/op\nBenchmarkX/size-4096   \t 100\t 900 ns/op\n"
	got, err := parseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if _, conflated := got["BenchmarkX/size"]; conflated {
		t.Fatalf("distinct sub-benchmarks conflated: %v", got)
	}
	if got["BenchmarkX/size-1024"] != 50 || got["BenchmarkX/size-4096"] != 900 {
		t.Errorf("raw names not preserved: %v", got)
	}
}

// writeFixtures drops a baseline and a bench-output file in a temp dir.
func writeFixtures(t *testing.T, baselineNs float64, benchText string) (basePath, benchPath string) {
	t.Helper()
	dir := t.TempDir()
	basePath = filepath.Join(dir, "baseline.json")
	benchPath = filepath.Join(dir, "bench.txt")
	base := baseline{
		Threshold:  0.20,
		Benchmarks: map[string]*benchSpec{"BenchmarkHubOfferParallel": {NsPerOp: baselineNs}},
	}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchPath, []byte(benchText), 0o644); err != nil {
		t.Fatal(err)
	}
	return basePath, benchPath
}

func TestGatePassesWithinThreshold(t *testing.T) {
	// Baseline 5000, measured best 5100: +2%, inside 20%.
	basePath, benchPath := writeFixtures(t, 5000, sampleText)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", basePath, "-bench", benchPath}, &buf); err != nil {
		t.Fatalf("gate failed within threshold: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "gate clean") {
		t.Errorf("missing clean verdict:\n%s", buf.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	// Baseline 4000, measured best 5100: +27.5%, beyond 20%.
	basePath, benchPath := writeFixtures(t, 4000, sampleText)
	var buf bytes.Buffer
	err := run([]string{"-baseline", basePath, "-bench", benchPath}, &buf)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("err = %v, want regression failure\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Errorf("missing REGRESSED verdict:\n%s", buf.String())
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	basePath, benchPath := writeFixtures(t, 5000, "BenchmarkSomethingElse-8 10 99 ns/op\n")
	var buf bytes.Buffer
	if err := run([]string{"-baseline", basePath, "-bench", benchPath}, &buf); err == nil {
		t.Fatal("a guarded benchmark vanished and the gate passed")
	}
}

func TestGateHonorsThresholdFlag(t *testing.T) {
	// +2% fails a 1% threshold.
	basePath, benchPath := writeFixtures(t, 5000, sampleText)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", basePath, "-bench", benchPath, "-threshold", "0.01"}, &buf); err == nil {
		t.Fatal("2% drift passed a 1% threshold")
	}
	// An improvement never fails.
	basePath, benchPath = writeFixtures(t, 50000, sampleText)
	buf.Reset()
	if err := run([]string{"-baseline", basePath, "-bench", benchPath, "-threshold", "0.01"}, &buf); err != nil {
		t.Fatalf("a 10x improvement failed the gate: %v", err)
	}
}

func TestWriteRefreshesBaseline(t *testing.T) {
	basePath, benchPath := writeFixtures(t, 123, sampleText)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", basePath, "-bench", benchPath, "-write"}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if got := base.Benchmarks["BenchmarkHubOfferParallel"].NsPerOp; got != 5100 {
		t.Errorf("rewritten ns/op = %g, want 5100", got)
	}
	if base.Threshold != 0.20 {
		t.Errorf("rewrite clobbered the threshold: %g", base.Threshold)
	}
	// After the rewrite the gate is clean by construction.
	buf.Reset()
	if err := run([]string{"-baseline", basePath, "-bench", benchPath}, &buf); err != nil {
		t.Errorf("gate not clean against freshly written baseline: %v", err)
	}
}

func TestEmptyInputRejected(t *testing.T) {
	basePath, benchPath := writeFixtures(t, 5000, "no benchmarks here\n")
	var buf bytes.Buffer
	if err := run([]string{"-baseline", basePath, "-bench", benchPath}, &buf); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

// writeList drops a `go test -list`-shaped file: benchmark names
// interleaved with the runner's "ok  pkg  time" lines.
func writeList(t *testing.T, names ...string) string {
	t.Helper()
	var b strings.Builder
	for i, name := range names {
		b.WriteString(name + "\n")
		if i%2 == 1 {
			b.WriteString("ok  \trepro/some/pkg\t0.002s\n")
		}
	}
	path := filepath.Join(t.TempDir(), "list.txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestListCatchesVanishedBenchmark: a baseline entry whose top-level
// benchmark is no longer declared anywhere must fail the gate even when
// the bench input happens to satisfy it — the declared set is the
// ground truth, the bench input only proves what ran.
func TestListCatchesVanishedBenchmark(t *testing.T) {
	basePath, benchPath := writeFixtures(t, 5000, sampleText)
	listPath := writeList(t, "BenchmarkSomethingElse", "BenchmarkAnother")
	var buf bytes.Buffer
	err := run([]string{"-baseline", basePath, "-bench", benchPath, "-list", listPath}, &buf)
	if err == nil || !strings.Contains(err.Error(), "no longer exist") {
		t.Fatalf("err = %v, want vanished-benchmark failure", err)
	}
	if !strings.Contains(err.Error(), "BenchmarkHubOfferParallel") {
		t.Errorf("failure does not name the stale entry: %v", err)
	}
	// The check guards -write too: a stale entry must not survive a
	// baseline refresh.
	if err := run([]string{"-baseline", basePath, "-bench", benchPath, "-list", listPath, "-write"}, &buf); err == nil {
		t.Fatal("stale entry survived -write with -list")
	}
}

// TestListAcceptsDeclaredSubBenchmarks: entries guard sub-benchmarks
// ("BenchmarkX/case"), but `go test -list` only declares top-level
// names — the check must compare the prefix before '/'.
func TestListAcceptsDeclaredSubBenchmarks(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.json")
	base := baseline{Threshold: 0.20, Benchmarks: map[string]*benchSpec{
		"BenchmarkEstimatorTick/aggvar": {NsPerOp: 10},
	}}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	benchPath := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchPath, []byte("BenchmarkEstimatorTick/aggvar-8 100 9.5 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	listPath := writeList(t, "BenchmarkEstimatorTick")
	var buf bytes.Buffer
	if err := run([]string{"-baseline", basePath, "-bench", benchPath, "-list", listPath}, &buf); err != nil {
		t.Fatalf("declared sub-benchmark rejected: %v\n%s", err, buf.String())
	}
}

func TestListRejectsEmptyDeclarations(t *testing.T) {
	basePath, benchPath := writeFixtures(t, 5000, sampleText)
	listPath := filepath.Join(t.TempDir(), "list.txt")
	if err := os.WriteFile(listPath, []byte("ok  \trepro\t0.001s\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-baseline", basePath, "-bench", benchPath, "-list", listPath}, &buf); err == nil {
		t.Fatal("benchmark-less -list input accepted")
	}
}

// TestParseBenchStripsGOMAXPROCSSuffix: a lone -N suffix is the core
// count, not a benchmark identity — a run on a 48-core box must
// satisfy a baseline recorded without the suffix, and a bare name
// (the -cpu=1 shape) merges with its suffixed sibling under best-of.
func TestParseBenchStripsGOMAXPROCSSuffix(t *testing.T) {
	text := "BenchmarkDecode-48   \t 100\t 52.5 ns/op\n" +
		"BenchmarkDecode   \t 100\t 48 ns/op\n" +
		"BenchmarkEncode-2   \t 100\t 1.2e+03 ns/op\n"
	got, err := parseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkDecode"] != 48 {
		t.Errorf("BenchmarkDecode = %v, want bare/suffixed merged at min 48: %v", got["BenchmarkDecode"], got)
	}
	if _, raw := got["BenchmarkDecode-48"]; raw {
		t.Errorf("suffix survived stripping: %v", got)
	}
	if got["BenchmarkEncode"] != 1200 {
		t.Errorf("scientific-notation ns/op = %v, want 1200", got["BenchmarkEncode"])
	}
}

// TestGateMatchesStrippedSuffix drives the stripping end to end: the
// committed baseline names the benchmark without a core-count suffix,
// the CI box reports with one, and the gate must pair them.
func TestGateMatchesStrippedSuffix(t *testing.T) {
	basePath, benchPath := writeFixtures(t, 5000,
		"BenchmarkHubOfferParallel-48   \t 100\t 5100 ns/op\n")
	var buf bytes.Buffer
	if err := run([]string{"-baseline", basePath, "-bench", benchPath}, &buf); err != nil {
		t.Fatalf("suffixed result did not satisfy unsuffixed baseline: %v\n%s", err, buf.String())
	}
}

// TestParseBenchRejectsMalformedJSON: a line that opens like a -json
// event but does not parse is corruption worth failing on — under
// pipefail a truncated event stream must not silently gate on partial
// results.
func TestParseBenchRejectsMalformedJSON(t *testing.T) {
	text := `{"Action":"output","Package":"repro/x","Output":"BenchmarkX-8 100 50 ns/op\n"}` + "\n" +
		`{"Action":"output","Package":"repro/x",` + "\n"
	_, err := parseBench(strings.NewReader(text))
	if err == nil || !strings.Contains(err.Error(), "bad -json event") {
		t.Fatalf("err = %v, want bad -json event", err)
	}
}

// TestParseBenchRejectsBadTiming: a result line whose ns/op column is
// not a number fails loudly in both the plain and the -json shapes.
func TestParseBenchRejectsBadTiming(t *testing.T) {
	for _, text := range []string{
		"BenchmarkX-8   \t 100\t 12..5 ns/op\n",
		`{"Action":"output","Package":"repro/x","Output":"BenchmarkX-8 100 1e+e3 ns/op\n"}` + "\n",
	} {
		if _, err := parseBench(strings.NewReader(text)); err == nil || !strings.Contains(err.Error(), "bad ns/op") {
			t.Fatalf("err = %v for %q, want bad ns/op", err, text)
		}
	}
}

// TestParseBenchIgnoresUnrelatedNoise: compiler chatter and runner
// framing lines are not results and not errors.
func TestParseBenchIgnoresUnrelatedNoise(t *testing.T) {
	text := "# repro/sampling [build flags]\ngoos: linux\nPASS\nok  \trepro\t0.1s\n"
	got, err := parseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("noise parsed as results: %v", got)
	}
}

// TestListCatchesVanishedSubBenchmarkParent: the baseline guards a
// sub-benchmark whose parent declaration was deleted; the entry's
// top-level prefix is what -list must be checked against.
func TestListCatchesVanishedSubBenchmarkParent(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.json")
	base := baseline{Threshold: 0.20, Benchmarks: map[string]*benchSpec{
		"BenchmarkGone/case": {NsPerOp: 10},
	}}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	benchPath := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchPath, []byte("BenchmarkGone/case-8 100 9 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	listPath := writeList(t, "BenchmarkEstimatorTick")
	var buf bytes.Buffer
	err = run([]string{"-baseline", basePath, "-bench", benchPath, "-list", listPath}, &buf)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkGone/case") {
		t.Fatalf("err = %v, want stale sub-benchmark entry named", err)
	}
}
